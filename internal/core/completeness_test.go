package core

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"pdip/internal/eip"
	"pdip/internal/fnlmma"
	"pdip/internal/pdip"
	"pdip/internal/prefetch"
	"pdip/internal/rdip"
	"pdip/internal/trace"
	"pdip/internal/trace/champsim"
)

// checkpointManifest is the authoritative field-coverage ledger of the
// checkpoint format: every field of every struct reachable from the
// simulator's state roots must be listed here with a disposition.
// TestCheckpointCompleteness walks the type tree by reflection and fails
// on any field that is missing, so adding state to the simulator without
// deciding its checkpoint treatment is a compile-adjacent error, not a
// silent replay divergence.
//
// Dispositions:
//
//	state   — captured in checkpoint.State (walk recurses into it)
//	config  — construction parameter, rebuilt identically by New from Config
//	wiring  — reference/port/stage plumbing, rebuilt identically by New
//	pool    — free-list; recycled objects are reset field-for-field, so an
//	          empty pool is behaviourally identical to a warm one
//	scratch — within-cycle or invariant-only bookkeeping, empty/ignorable
//	          at every cycle boundary (where snapshots are taken)
//	memo    — pure cache, invalidated on restore and recomputed on demand
//	derived — recomputed from captured fields during construction/restore
//	diag    — diagnostics or measurement output cleared by ResetStats
//	          (snapshot forks call ResetStats before measuring)
var checkpointManifest = map[string]map[string]string{
	"core.Core": {
		"cfg":   "config",
		"prog":  "config",
		"hier":  "state",
		"iport": "wiring", "dport": "wiring",
		"bp": "state", "iag": "state", "ftq": "state", "pq": "state", "rob": "state",
		// pf is captured through prefetch.Checkpointer; the concrete types
		// are walk roots because reflection cannot traverse an interface.
		"pf":       "state",
		"pipe":     "wiring",
		"decodeQ":  "state",
		"ifuEntry": "state",
		"now":      "state", "seq": "state", "retired": "state",
		"pendingResteer": "state", "hasResteer": "state", "iagResumeAt": "state",
		"shadowTrigger": "state", "shadowWasReturn": "state", "shadowLeft": "state",
		"lastTakenBlock": "state",
		"promoted":       "state", "fecEver": "state",
		"fecSet": "state", "pfSet": "state",
		"fecReqAge": "state", "fecHolds": "state", "fecTrace": "state",
		"dataRng": "state", "promoRng": "state",
		"reg": "state", "ct": "wiring",
		"sampleEvery": "state", "samples": "diag", "sampleHook": "diag",
		"reqBuf": "scratch", "retireBuf": "scratch",
		"uopFree": "pool", "epFree": "pool",
		"pfEmitter": "wiring", "pfCallsRet": "wiring",
	},
	"pdip.PDIP": {
		"cfg": "config", "sets": "state", "tick": "state", "r": "state",
		"Stats": "state", "debugInserted": "diag", "DebugLog": "diag",
	},
	"eip.EIP": {
		"cfg": "config", "hist": "state", "head": "state", "size": "state",
		"sets": "state", "anal": "state", "tick": "state", "Stats": "state",
	},
	"rdip.RDIP": {
		"cfg": "config", "sets": "state", "tick": "state", "ras": "state",
		"sig": "state", "pending": "state", "Stats": "state",
	},
	"fnlmma.FNLMMA": {
		"cfg": "config", "worth": "state", "mmaTag": "state", "mmaDst": "state",
		"missRing": "state", "missHead": "state", "pending": "state", "Stats": "state",
	},
	"prefetch.NextLine": {
		"Degree": "config", "Emitted": "state", "pending": "state",
	},
	"prefetch.None": {},

	"mem.Hierarchy": {
		"L1I": "state", "L1D": "state", "L2": "state", "L3": "state",
		"DRAMLatency": "config",
		"inst":        "wiring", "data": "wiring",
		// shared selects the capture shape (a shared hierarchy skips the
		// uncore-owned L2/L3); it is wiring decided at construction.
		"shared": "config",
	},
	// Socket-level state: the shared uncore is captured once
	// (checkpoint.UncoreState), cores as children. targets/finals are Run
	// bookkeeping re-established by the next Run call, not simulator state.
	"core.Socket": {
		"cores": "state", "unc": "state",
		"cfg": "config", "noFF": "config",
		"now":     "state",
		"targets": "diag", "finals": "diag",
	},
	"uncore.Uncore": {
		"L2": "state", "L3": "state",
		"DRAMLatency": "config",
		"chain":       "wiring", "ports": "wiring",
		"reg": "state",
	},
	"bpu.BPU": {
		"Tage": "state", "Ittage": "state", "Btb": "state", "Ras": "state",
		"Stats": "state",
	},
	"frontend.IAG": {
		"BPU":    "wiring",
		"oracle": "state", "wrong": "state",
		"maxEntryInsts":     "config",
		"pendingMispredict": "state",
		"free":              "pool", "wrongFree": "pool",
	},
	"frontend.FTQ": {
		"entries": "state",
		// Ring phase is representation, not simulated state: restore
		// re-pushes entries oldest-first at head = 0.
		"head": "derived", "count": "derived",
	},
	"prefetch.Queue": {
		"entries": "state",
		"head":    "derived", "count": "derived",
		"ReserveMSHRs": "config", "IssuePerCycle": "config", "ZeroCost": "config",
		"Stats": "state",
	},
	"backend.ROB": {
		"entries": "state",
		"head":    "derived", "count": "derived",
		"Stats": "state",
	},
	"pipeline.Latch": {
		"buf":  "state",
		"head": "derived",
	},
	"frontend.FTQEntry": {
		"Insts": "state", "Start": "state", "Lines": "state",
		"WrongPath": "state", "HasBranch": "state", "Pred": "state",
		"Mispredict": "state", "Cause": "state", "ResolveAtDecode": "state",
		"CorrectTarget": "state", "ShadowTrigger": "state",
		"ShadowWasReturn": "state", "Episodes": "state", "ReadyAt": "state",
	},
	"core.resteerEvent": {
		"at": "state", "target": "state", "trigger": "state", "cause": "state",
	},
	"core.FECInstance": {
		"Line": "state", "Trigger": "state", "Starve": "state", "Served": "state",
	},
	"rng.RNG": {
		"state": "state",
	},
	"metrics.Registry": {
		// Owned metric values are captured name-sorted; bound functions
		// read live simulator state and are excluded by construction.
		"counters": "state", "gauges": "state", "hists": "state",
		"counterFns": "wiring", "gaugeFns": "wiring",
	},
	"pdip.entry": {
		"valid": "state", "tag": "state", "lru": "state", "targets": "state",
	},
	"pdip.Stats": {
		"InsertAttempts": "state", "InsertFiltered": "state",
		"InsertNoTrigger": "state", "InsertReturnSkipped": "state",
		"Inserted": "state", "MaskMerged": "state",
		"Lookups": "state", "Hits": "state",
	},
	"eip.histEntry": {
		"line": "state", "cycle": "state",
	},
	"eip.tableEntry": {
		"valid": "state", "tag": "state", "lru": "state", "dsts": "state",
	},
	"eip.Stats": {
		"Entangled": "state", "NoSource": "state", "Lookups": "state", "Hits": "state",
	},
	"rdip.entry": {
		"valid": "state", "tag": "state", "lru": "state", "lines": "state",
	},
	"rdip.Stats": {
		"ContextSwitches": "state", "Recorded": "state", "Hits": "state",
	},
	"fnlmma.Stats": {
		"FNLEmitted": "state", "MMAEmitted": "state", "Trained": "state",
	},
	"prefetch.Request": {
		"Line": "state", "Trigger": "state",
	},

	"cache.Cache": {
		"cfg": "config", "sets": "state",
		"setMask": "derived",
		"tick":    "state", "inflight": "state", "inflightMin": "state",
		"Stats": "state",
		// Owner tracking (shared levels): the owner columns are state; the
		// per-owner occupancy is recounted from InflightOwner at restore,
		// and the earliest-free scratch is reused per call.
		"Owners":        "state",
		"ownerReserve":  "config",
		"ownerUsed":     "derived",
		"inflightOwner": "state",
		"scratchT":      "scratch", "scratchO": "scratch", "scratchU": "scratch",
	},
	"bpu.TAGE": {
		"base": "state", "tables": "state", "hist": "state",
		"idxFold": "state", "tagFold": "state", "tg2Fold": "state",
		"useAltOnNa": "state", "allocSeed": "state",
		"memoPC": "memo", "memoOK": "memo", "memoIdx": "memo", "memoTag": "memo",
	},
	"bpu.ITTAGE": {
		"base": "state", "tables": "state", "hist": "state",
		"idxFold": "state", "tagFold": "state", "allocSeed": "state",
		"memoPC": "memo", "memoOK": "memo", "memoIdx": "memo", "memoTag": "memo",
	},
	"bpu.BTB": {
		"sets":     "state",
		"setShift": "derived", "setMask": "derived",
		"tick": "state", "lookups": "state", "hits": "state",
	},
	"bpu.RAS": {
		"entries": "state", "top": "state", "depth": "state",
	},
	"bpu.Stats": {
		"CondBranches": "state", "CondMispredict": "state",
		"BTBLookups": "state", "BTBMissTaken": "state",
		"IndBranches": "state", "IndMispredict": "state",
		"Returns": "state", "RetMispredict": "state",
	},
	"trace.Walker": {
		"prog": "config", "r": "state", "stack": "state", "loopCnt": "state",
		// cur is captured as a block ID and re-resolved into prog.
		"cur":     "state",
		"instIdx": "state", "lostPC": "state", "wrongPath": "state",
		"dispatchCenter": "state", "count": "state",
	},
	"prefetch.Stats": {
		"Enqueued": "state", "DroppedQueueFull": "state", "Issued": "state",
		"DroppedPresent": "state", "DroppedMSHR": "state", "ByTrigger": "state",
	},
	"frontend.Uop": {
		"Inst": "state", "Seq": "state", "WrongPath": "state",
		// Ep is serialized as an index into the deduplicated episode table
		// so shared-episode identity survives the round trip.
		"Ep":         "state",
		"Mispredict": "state", "ResolveAtDecode": "state", "Cause": "state",
		"CorrectTarget": "state", "TriggerBlock": "state", "IsMemOp": "state",
		"DataLine": "state", "DoneAt": "state", "AvailableAt": "state",
	},
	"backend.Stats": {
		"Pushed": "state", "Retired": "state", "Squashed": "state",
	},
	"isa.Inst": {
		"PC": "state", "Size": "state", "Kind": "state",
		"Taken": "state", "Target": "state",
	},
	"bpu.Prediction": {
		"Taken": "state", "Target": "state", "BTBHit": "state",
	},
	"frontend.LineEpisode": {
		"Line": "state", "WrongPath": "state", "Missed": "state",
		"ServedBy": "state", "FetchCycle": "state", "DoneCycle": "state",
		"Starve": "state", "BackendEmpty": "state", "WasPrefetch": "state",
		"Processed": "state", "ResteerTrigger": "state",
		"ResteerWasReturn": "state", "Refs": "state",
	},
	"metrics.Counter": {"v": "state"},
	"metrics.Gauge":   {"v": "state"},
	"metrics.Histogram": {
		"bounds": "config",
		"counts": "state", "total": "state", "sum": "state",
	},
	"pdip.target": {
		"valid": "state", "base": "state", "mask": "state",
		"trig": "state", "lru": "state",
	},

	"cache.Line": {
		"valid": "state", "tag": "state", "lru": "state",
		"readyAt": "state", "priority": "state", "prefetched": "state",
		"owner": "state",
	},
	"cache.OwnerStats": {
		"Fills": "state", "MSHRSteals": "state",
		"DelayedFills": "state", "DelayCycles": "state",
		"SpecDropped":            "state",
		"CrossEvictionsSuffered": "state", "CrossEvictionsCaused": "state",
	},
	"cache.Stats": {
		"Accesses": "state", "Misses": "state", "InstMisses": "state",
		"DataMisses": "state", "LateHits": "state", "Fills": "state",
		"PrefetchFills": "state", "UsefulPrefetches": "state",
		"LatePrefetches": "state", "UselessPrefetches": "state",
		"Evictions": "state",
	},
	"bpu.tageEntry": {
		"tag": "state", "ctr": "state", "useful": "state",
	},
	"bpu.ittageEntry": {
		"tag": "state", "target": "state", "ctr": "state", "useful": "state",
	},
	"bpu.history": {
		"bits": "state", "head": "state",
	},
	"bpu.foldedHist": {
		"comp":    "state",
		"origLen": "derived", "width": "derived", "outPoint": "derived",
	},
	"bpu.btbEntry": {
		"valid": "state", "tag": "state", "target": "state",
		"kind": "state", "lru": "state",
	},
	// Blocks are immutable program structure, regenerated deterministically
	// from the workload parameters; the walker's position in them is the
	// state (captured as a block ID re-resolved into the program).
	"cfg.Block": {
		"ID": "config", "Func": "config", "Addr": "config",
		"InstSizes": "config", "Term": "config",
	},
	// ChampSim trace replay: the trace file is reconstruction input, the
	// stream position and derived-wrong-path structures are the state
	// (ChampSimState in the checkpoint's SourceState union). err latches
	// replay divergences for post-run reporting and is reset on restore.
	"champsim.Source": {
		"r": "state", "shadow": "state",
		"cur": "state", "primed": "state", "count": "state",
		"dec": "state", "ras": "state",
		"err":       "diag",
		"freeWrong": "pool",
	},
	// The reader's chunk window and pass position are re-derived from the
	// captured instruction count (RestoreSource reseeks the stream).
	"champsim.Reader": {
		"path": "config", "f": "wiring", "zr": "wiring", "gz": "config",
		"buf": "scratch", "pos": "derived", "n": "derived",
		"recInPass": "derived", "passRecords": "config", "wraps": "derived",
	},
	// The lookahead record is re-read from the reseeked stream; its wire
	// fields are state in the same sense the walker's position is.
	"champsim.Record": {
		"IP": "derived", "IsBranch": "derived", "BranchTaken": "derived",
		"DestRegs": "derived", "SrcRegs": "derived",
		"DestMem": "derived", "SrcMem": "derived",
	},
	"champsim.decodeCache": {"inst": "state", "valid": "state"},
	"champsim.rasMirror":   {"buf": "state", "top": "state", "depth": "state"},
	"champsim.Wrong":       {"src": "wiring", "pc": "state", "ras": "state"},
}

// checkpointRoots returns the state roots of the walk: the core itself
// plus every implementation reachable only through an interface, which
// reflection cannot traverse — the prefetchers (prefetch.Prefetcher) and
// the instruction sources (trace.Source / trace.OracleSource).
func checkpointRoots() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf(Core{}),
		reflect.TypeOf(Socket{}),
		reflect.TypeOf(pdip.PDIP{}),
		reflect.TypeOf(eip.EIP{}),
		reflect.TypeOf(rdip.RDIP{}),
		reflect.TypeOf(fnlmma.FNLMMA{}),
		reflect.TypeOf(prefetch.NextLine{}),
		reflect.TypeOf(prefetch.None{}),
		reflect.TypeOf(trace.Walker{}),
		reflect.TypeOf(champsim.Source{}),
		reflect.TypeOf(champsim.Wrong{}),
	}
}

// typeKey renders a struct type as "pkg.Name", with generic instantiation
// arguments stripped ("pipeline.Latch").
func typeKey(t reflect.Type) string {
	name := t.Name()
	if i := strings.IndexByte(name, '['); i >= 0 {
		name = name[:i]
	}
	pkg := t.PkgPath()
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + name
}

// walkable unwraps pointers and container types down to an element type,
// returning the struct types a field can lead to.
func walkable(t reflect.Type) []reflect.Type {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return walkable(t.Elem())
	case reflect.Map:
		return append(walkable(t.Key()), walkable(t.Elem())...)
	case reflect.Struct:
		if strings.HasPrefix(t.PkgPath(), "pdip/") {
			return []reflect.Type{t}
		}
	}
	return nil
}

func TestCheckpointCompleteness(t *testing.T) {
	seen := map[reflect.Type]bool{}
	reached := map[string]bool{}
	queue := checkpointRoots()
	for len(queue) > 0 {
		typ := queue[0]
		queue = queue[1:]
		if seen[typ] {
			continue
		}
		seen[typ] = true
		key := typeKey(typ)
		reached[key] = true
		fields, ok := checkpointManifest[key]
		if !ok {
			var missing []string
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				missing = append(missing, f.Name+" "+f.Type.String())
			}
			t.Errorf("struct %s reached by the checkpoint walk but has no manifest entry; fields:\n\t%s",
				key, strings.Join(missing, "\n\t"))
			continue
		}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			disp, ok := fields[f.Name]
			if !ok {
				t.Errorf("field %s.%s (%s) is not in the checkpoint manifest — capture it in the checkpoint format or record why it can be skipped",
					key, f.Name, f.Type.String())
				continue
			}
			if disp == "state" {
				queue = append(queue, walkable(f.Type)...)
			}
		}
		// Stale manifest entries rot into false confidence; flag them.
		for name := range fields {
			if _, ok := typ.FieldByName(name); !ok {
				t.Errorf("manifest lists %s.%s but the struct has no such field (stale entry)", key, name)
			}
		}
	}
	var stale []string
	for key := range checkpointManifest {
		if !reached[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		t.Errorf("manifest entry %s was never reached by the walk (stale type, or a root is missing)", key)
	}
}
