package core

import (
	"pdip/internal/bpu"
	"pdip/internal/cache"
	"pdip/internal/isa"
	"pdip/internal/prefetch"
	"pdip/internal/stats"
)

// Result is an immutable snapshot of one run's counters plus the derived
// metrics the paper reports.
type Result struct {
	// Core holds pipeline-level counters (cycles, instructions, FEC
	// machinery, top-down slots).
	Core stats.Core
	// Per-level cache counters.
	L1I, L1D, L2, L3 cache.Stats
	// PQ holds prefetch-queue issue accounting.
	PQ prefetch.Stats
	// BPU holds branch prediction accounting.
	BPU bpu.Stats

	// PrefetcherName and PrefetcherKB identify the prefetcher under test.
	PrefetcherName string
	PrefetcherKB   float64
	// BTBKB is the BTB storage (Figure 15 accounting).
	BTBKB float64

	// FECLineSet and PrefetchTargetSet are populated when
	// Config.CollectSets is true (coverage analysis, §7.3).
	FECLineSet        map[isa.Addr]struct{}
	PrefetchTargetSet map[isa.Addr]struct{}
	// FECReqAge buckets FEC instances by the age of the last prefetch
	// request for their line: [never, >10K cycles, 100..10K, <=100].
	FECReqAge [4]uint64
	// FECHolds classifies FEC instances: [no-trigger, table-holds-pair,
	// table-missing-pair] (PDIP + CollectSets only).
	FECHolds [3]uint64
}

// Result snapshots the current counters.
func (co *Core) Result() Result {
	r := Result{
		Core:           co.ct.statsCore(),
		L1I:            co.hier.L1I.Stats,
		L1D:            co.hier.L1D.Stats,
		L2:             co.hier.L2.Stats,
		L3:             co.hier.L3.Stats,
		PQ:             co.pq.Stats,
		BPU:            co.bp.Stats,
		PrefetcherName: co.pf.Name(),
		PrefetcherKB:   co.pf.StorageKB(),
		BTBKB:          co.bp.Btb.StorageKB(),
	}
	if co.fecSet != nil {
		r.FECLineSet = make(map[isa.Addr]struct{}, len(co.fecSet))
		for k := range co.fecSet {
			r.FECLineSet[k] = struct{}{}
		}
		r.PrefetchTargetSet = make(map[isa.Addr]struct{}, len(co.pfSet))
		for k := range co.pfSet {
			r.PrefetchTargetSet[k] = struct{}{}
		}
		r.FECReqAge = co.fecReqAge
		r.FECHolds = co.fecHolds
	}
	return r
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 { return r.Core.IPC() }

// L1IMPKI returns L1 instruction-side miss traffic per kilo-instruction,
// counting every fill (demand, FDIP prime, prefetch) like the paper's FDIP
// baseline does — with a decoupled front-end most L1I misses are absorbed
// by prefetch-initiated fills rather than demand misses.
func (r *Result) L1IMPKI() float64 { return r.Core.PerKilo(r.L1I.Fills) }

// L2IMPKI returns instruction-side L2 misses per kilo-instruction.
func (r *Result) L2IMPKI() float64 { return r.Core.PerKilo(r.L2.InstMisses) }

// L2DMPKI returns data-side L2 misses per kilo-instruction.
func (r *Result) L2DMPKI() float64 { return r.Core.PerKilo(r.L2.DataMisses) }

// L3MPKI returns L3 misses per kilo-instruction.
func (r *Result) L3MPKI() float64 { return r.Core.PerKilo(r.L3.Misses) }

// PPKI returns prefetches issued per kilo-instruction (Table 4).
func (r *Result) PPKI() float64 { return r.Core.PerKilo(r.PQ.Issued) }

// PrefetchAccuracy returns the fraction of issued prefetches that were
// demand-accessed before eviction (Table 4's accuracy definition).
func (r *Result) PrefetchAccuracy() float64 {
	if r.L1I.PrefetchFills == 0 {
		return 0
	}
	return float64(r.L1I.UsefulPrefetches) / float64(r.L1I.PrefetchFills)
}

// LatePrefetchRate returns the fraction of useful prefetches that arrived
// late (demand found the line still in flight; Figure 11's partial hits).
func (r *Result) LatePrefetchRate() float64 {
	if r.L1I.UsefulPrefetches == 0 {
		return 0
	}
	return float64(r.L1I.LatePrefetches) / float64(r.L1I.UsefulPrefetches)
}

// UselessPrefetchPKI returns prefetched-but-evicted-unused lines per
// kilo-instruction (§7.3 pollution discussion).
func (r *Result) UselessPrefetchPKI() float64 { return r.Core.PerKilo(r.L1I.UselessPrefetches) }

// FECLinePct returns the FEC share of retired line episodes (Figure 4,
// first bar).
func (r *Result) FECLinePct() float64 {
	if r.Core.LinesRetired == 0 {
		return 0
	}
	return float64(r.Core.FECLines) / float64(r.Core.LinesRetired)
}

// FECStallShare returns the share of decode starvation cycles caused by
// FEC lines (Figure 4, second bar).
func (r *Result) FECStallShare() float64 {
	if r.Core.DecodeStarvedCycles == 0 {
		return 0
	}
	return float64(r.Core.FECStallCycles) / float64(r.Core.DecodeStarvedCycles)
}

// TriggerDistribution returns the mispredict-trigger and last-taken-trigger
// shares of issued prefetches (Figure 16). Prefetchers without trigger
// classes report zeros.
func (r *Result) TriggerDistribution() (mispredict, lastTaken float64) {
	m := float64(r.PQ.ByTrigger[prefetch.TriggerMispredict])
	l := float64(r.PQ.ByTrigger[prefetch.TriggerLastTaken])
	if m+l == 0 {
		return 0, 0
	}
	return m / (m + l), l / (m + l)
}
