package core

import (
	"fmt"

	"pdip/internal/cfg"
	"pdip/internal/mem"
	"pdip/internal/metrics"
	"pdip/internal/pipeline"
	"pdip/internal/trace"
	"pdip/internal/uncore"
)

// SocketTenant describes one core of a socket: its instruction source and
// its core-private configuration. The shared-level halves of every
// tenant's Config.Mem (L2, L3, DRAM latency) must agree — there is only
// one uncore.
type SocketTenant struct {
	// Prog is the synthetic program the tenant walks; may be nil when Src
	// drives the core (trace replay), exactly as in NewWithSource.
	Prog *cfg.Program
	// Src optionally replaces the CFG walker with a trace source.
	Src trace.OracleSource
	// Config is the tenant's core configuration.
	Config Config
}

// SocketConfig sets socket-wide policy.
type SocketConfig struct {
	// SharedPrefetcher shares tenant 0's prefetcher instance across every
	// core — the paper-motivated "one PDIP table for the socket" mode, as
	// opposed to the default per-core tables. All tenants then train and
	// query the same table, interleaved in arbitration order.
	SharedPrefetcher bool
	// L2Reserve/L3Reserve are the per-tenant reserved MSHR shares at the
	// shared levels (see uncore.Config; zero picks the default split).
	L2Reserve, L3Reserve int
}

// tenantFinal is the crossing snapshot Run records the moment a tenant
// retires its instruction quota: with co-tenants still running the core
// keeps executing (it keeps contending for the uncore), but its reported
// result is frozen at the quota boundary so every tenant is measured over
// exactly n instructions.
type tenantFinal struct {
	done bool
	res  Result
	snap metrics.Snapshot
}

// Socket steps N cores in lockstep against one shared uncore. Arbitration
// at the shared port is deterministic round-robin: within a cycle the
// cores tick in rotating order (core (cycle mod N) first), so no tenant
// holds static priority and a replay of the same tenants is bit-identical.
// A Socket with one tenant executes the exact single-core path:
// Socket{N:1} replays the golden grid bit for bit (pinned by
// TestGoldenSocketEquivalence).
type Socket struct {
	cores []*Core
	unc   *uncore.Uncore
	cfg   SocketConfig

	now  int64
	noFF bool

	targets []uint64
	finals  []tenantFinal
}

// NewSocket builds a socket over the given tenants. Tenant configs must
// agree on the shared-level geometry (L2, L3, DRAM) and the fast-forward
// mode; everything core-private (benchmark, policy, prefetcher, BTB, seed)
// may differ per tenant.
func NewSocket(tenants []SocketTenant, sc SocketConfig) (*Socket, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("socket: need at least one tenant")
	}
	base := tenants[0].Config
	for i, t := range tenants {
		if err := t.Config.Validate(); err != nil {
			return nil, fmt.Errorf("socket: tenant %d: %w", i, err)
		}
		c := t.Config
		if c.Mem.L2 != base.Mem.L2 || c.Mem.L3 != base.Mem.L3 || c.Mem.DRAMLatency != base.Mem.DRAMLatency {
			return nil, fmt.Errorf("socket: tenant %d shared-level config (L2/L3/DRAM) differs from tenant 0", i)
		}
		if c.NoFastForward != base.NoFastForward {
			return nil, fmt.Errorf("socket: tenant %d fast-forward mode differs from tenant 0 (idle skip is a socket-wide decision)", i)
		}
	}
	unc, err := uncore.New(uncore.Config{
		L2:          base.Mem.L2,
		L3:          base.Mem.L3,
		DRAMLatency: base.Mem.DRAMLatency,
		Requesters:  len(tenants),
		L2Reserve:   sc.L2Reserve,
		L3Reserve:   sc.L3Reserve,
	})
	if err != nil {
		return nil, err
	}
	s := &Socket{
		cores:   make([]*Core, 0, len(tenants)),
		unc:     unc,
		cfg:     sc,
		noFF:    base.NoFastForward,
		targets: make([]uint64, len(tenants)),
		finals:  make([]tenantFinal, len(tenants)),
	}
	for i, t := range tenants {
		c := t.Config
		if sc.SharedPrefetcher && i > 0 {
			c.Prefetcher = tenants[0].Config.Prefetcher
		}
		hier, err := mem.NewShared(c.Mem, unc.L2, unc.L3, unc.Port(i))
		if err != nil {
			return nil, err
		}
		co, err := newCore(t.Prog, t.Src, c, hier)
		if err != nil {
			return nil, fmt.Errorf("socket: tenant %d: %w", i, err)
		}
		s.cores = append(s.cores, co)
	}
	return s, nil
}

// NumCores returns the tenant count.
func (s *Socket) NumCores() int { return len(s.cores) }

// Core returns tenant i's core (tests and checkpoint probing).
func (s *Socket) Core(i int) *Core { return s.cores[i] }

// Uncore returns the shared uncore.
func (s *Socket) Uncore() *uncore.Uncore { return s.unc }

// Cycles returns the socket clock (every core's clock is in lockstep).
func (s *Socket) Cycles() int64 { return s.now }

// step advances the socket one cycle: every core ticks once, in rotating
// round-robin order so shared-port priority circulates, then the
// socket-wide idle skip runs (only when every core is provably idle).
//
//lint:hotpath
func (s *Socket) step() {
	s.now++
	n := len(s.cores)
	start := int((s.now - 1) % int64(n))
	for k := 0; k < n; k++ {
		s.cores[(start+k)%n].TickCycle()
	}
	if !s.noFF {
		s.fastForward()
	}
}

// fastForward is the socket-wide idle skip: the earliest next event across
// all cores bounds the jump, and every core applies the same bulk stall
// accounting, keeping the lockstep clocks identical. With one core this
// is exactly Core.fastForward.
func (s *Socket) fastForward() {
	next := pipeline.Never
	for _, co := range s.cores {
		if t := co.NextEventAt(); t < next {
			next = t
		}
	}
	if next <= s.now+1 || next == pipeline.Never {
		return
	}
	n := next - s.now - 1
	for _, co := range s.cores {
		co.SkipIdle(n)
	}
	s.now += n
}

// Step advances the socket exactly one arbitration round: one cycle for
// every core plus any socket-wide idle skip. Exposed for benchmarks
// (BenchmarkMicroSocketStep) and fine-grained tests; Run is the bulk
// driver.
func (s *Socket) Step() { s.step() }

// Run advances the socket until every tenant has retired n more
// instructions. A tenant that reaches its quota first keeps running — it
// must keep contending for the shared levels — but its Result and metric
// snapshot are frozen at the crossing (TenantResult), so each tenant is
// measured over exactly n instructions. Returns an error when the cycle
// budget explodes (deadlock guard, as in Core.Run).
func (s *Socket) Run(n uint64) error {
	maxPer := 0
	for i, co := range s.cores {
		s.targets[i] = co.retired + n
		s.finals[i] = tenantFinal{}
		mp := co.cfg.MaxCyclesPerInst
		if mp <= 0 {
			mp = 400
		}
		if mp > maxPer {
			maxPer = mp
		}
	}
	budget := s.now + int64(n)*int64(maxPer) + 100_000
	remaining := len(s.cores)
	for remaining > 0 {
		s.step()
		for i, co := range s.cores {
			if !s.finals[i].done && co.retired >= s.targets[i] {
				s.finals[i] = tenantFinal{done: true, res: co.Result(), snap: co.MetricsSnapshot()}
				remaining--
			}
		}
		if s.now > budget {
			return fmt.Errorf("socket: cycle budget exceeded (%d cycles, %d tenants unfinished) — likely a deadlock or pathological configuration",
				s.now, remaining)
		}
	}
	return nil
}

// TenantResult returns tenant i's result and metric snapshot as frozen at
// its most recent Run quota crossing.
func (s *Socket) TenantResult(i int) (Result, metrics.Snapshot) {
	return s.finals[i].res, s.finals[i].snap
}

// ResetStats zeroes every tenant's measurement counters and the uncore's
// (shared stats, per-owner interference, uncore registry), keeping all
// architectural state warm — the socket-wide post-warmup reset.
func (s *Socket) ResetStats() {
	for _, co := range s.cores {
		co.ResetStats()
	}
	s.unc.ResetStats()
}

// InterferenceSnapshot captures the uncore registry: shared L2/L3 stats
// plus per-tenant traffic and interference counters.
func (s *Socket) InterferenceSnapshot() metrics.Snapshot {
	return s.unc.MetricsSnapshot()
}

// CombinedSnapshot merges every tenant's registry (prefixed "tenant<i>.")
// with the uncore registry into one snapshot — the socket-wide state view
// the determinism and checkpoint tests compare bit for bit.
func (s *Socket) CombinedSnapshot() metrics.Snapshot {
	out := metrics.Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
	}
	for i, co := range s.cores {
		prefix := fmt.Sprintf("tenant%d.", i)
		snap := co.MetricsSnapshot()
		for name, v := range snap.Counters {
			out.Counters[prefix+name] = v
		}
		for name, v := range snap.Gauges {
			out.Gauges[prefix+name] = v
		}
	}
	u := s.unc.MetricsSnapshot()
	for name, v := range u.Counters {
		out.Counters[name] = v
	}
	for name, v := range u.Gauges {
		out.Gauges[name] = v
	}
	return out
}
