package core

import (
	"bytes"
	"fmt"
	"testing"

	"pdip/internal/checkpoint"
	"pdip/internal/eip"
	"pdip/internal/fnlmma"
	"pdip/internal/pdip"
	"pdip/internal/prefetch"
	"pdip/internal/rdip"
)

// snapshotRoundTrip snapshots co, pushes the state through the serialized
// wire format (Encode/Decode — so the test covers the on-disk path, not
// just the in-memory fork), restores a fresh core, and returns it.
func snapshotRoundTrip(t *testing.T, co *Core, c Config) *Core {
	t.Helper()
	st, err := co.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	st2, err := checkpoint.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fork, err := NewFromSnapshot(co.prog, c, st2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return fork
}

// diffCores runs both cores n more instructions and diffs their full
// metric snapshots bit-exactly.
func diffCores(t *testing.T, label string, a, b *Core, n uint64) {
	t.Helper()
	if err := a.Run(n); err != nil {
		t.Fatalf("%s: original: %v", label, err)
	}
	if err := b.Run(n); err != nil {
		t.Fatalf("%s: restored: %v", label, err)
	}
	if a.Cycles() != b.Cycles() {
		t.Errorf("%s: cycle counts diverged: %d vs %d", label, a.Cycles(), b.Cycles())
	}
	if diff := a.MetricsSnapshot().Diff(b.MetricsSnapshot()); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		t.Errorf("%s: %d metrics differ after restore:\n  %v", label, len(diff), show)
	}
}

// TestCheckpointRoundTripMidRun snapshots cores at arbitrary mid-run
// points — not quiesced measurement boundaries — and requires the restored
// core to replay bit-identically. The snapshot points are chosen densely
// enough that the adversarial microarchitectural states a checkpoint must
// survive are all exercised at least once, and the test fails if any of
// them never occurred (so the coverage claim is itself checked):
//
//   - a pending front-end resteer with the wrong-path walker live,
//   - full MSHRs at some cache level,
//   - a non-empty prefetch queue,
//   - uops in flight in the decode latch and ROB, episodes shared.
func TestCheckpointRoundTripMidRun(t *testing.T) {
	prog := testProgram(11)
	c := testConfig(11)
	c.Prefetcher = pdip.New(pdip.DefaultConfig())

	required := []string{
		"resteer-pending", "wrong-path-walker", "pq-nonempty",
		"mshr-full", "uops-in-flight", "episodes-shared",
	}
	conditions := func(st *checkpoint.State) []string {
		var out []string
		if st.Core.HasResteer {
			out = append(out, "resteer-pending")
		}
		if st.IAG.Wrong != nil {
			out = append(out, "wrong-path-walker")
		}
		if len(st.PQ.Entries) > 0 {
			out = append(out, "pq-nonempty")
		}
		if len(st.Mem.L1D.Inflight) >= c.Mem.L1D.MSHRs {
			out = append(out, "mshr-full")
		}
		if len(st.DecodeQ) > 0 && len(st.ROB.Uops) > 0 {
			out = append(out, "uops-in-flight")
		}
		if len(st.Episodes) > 1 {
			out = append(out, "episodes-shared")
		}
		return out
	}

	seen := map[string]bool{}
	co := MustNew(prog, c)
	// Throttle prefetch issue so PQ backlog survives to run boundaries and
	// the pq-nonempty condition is actually reachable. IssuePerCycle is a
	// config knob (not checkpointed), so it is applied to forks identically.
	co.pq.IssuePerCycle = 1
	if err := co.Run(5003); err != nil {
		t.Fatal(err)
	}
	// Snapshot at a dense, irregular stride: the transient conditions
	// (non-empty PQ, full MSHRs) show at only a few percent of run
	// boundaries, so the schedule keeps sampling until every condition has
	// been caught — and runs the costlier fork bit-identity verification
	// whenever a condition is first seen, plus periodically in between.
	for step := 0; step < 1500 && len(seen) < len(required); step++ {
		if err := co.Run(17); err != nil {
			t.Fatal(err)
		}
		st, err := co.Snapshot()
		if err != nil {
			t.Fatalf("step %d: snapshot: %v", step, err)
		}
		fresh := false
		for _, cond := range conditions(st) {
			if !seen[cond] {
				seen[cond] = true
				fresh = true
			}
		}
		if !fresh && step%53 != 0 {
			continue
		}
		fork, err := NewFromSnapshot(prog, c2WithFreshPrefetcher(c), st)
		if err != nil {
			t.Fatalf("step %d: restore: %v", step, err)
		}
		fork.pq.IssuePerCycle = co.pq.IssuePerCycle
		diffCores(t, fmt.Sprintf("step %d", step), co, fork, 997)
	}
	for _, cond := range required {
		if !seen[cond] {
			t.Errorf("adversarial condition %q never observed across snapshots — widen the snapshot schedule", cond)
		}
	}
}

// c2WithFreshPrefetcher clones c with a fresh prefetcher instance, the way
// the harness builds each fork's config: restoring into the prefetcher
// instance still attached to the original core would alias live state.
func c2WithFreshPrefetcher(c Config) Config {
	switch p := c.Prefetcher.(type) {
	case *pdip.PDIP:
		_ = p
		c.Prefetcher = pdip.New(pdip.DefaultConfig())
	case *eip.EIP:
		c.Prefetcher = eip.New(eip.DefaultConfig())
	case *rdip.RDIP:
		c.Prefetcher = rdip.New(rdip.DefaultConfig())
	case *fnlmma.FNLMMA:
		c.Prefetcher = fnlmma.New(fnlmma.DefaultConfig())
	case *prefetch.NextLine:
		c.Prefetcher = prefetch.NewNextLine(p.Degree)
	}
	return c
}

// TestCheckpointRoundTripAllPrefetchers round-trips a mid-run snapshot
// under every prefetcher implementation, so each one's Capture/Restore
// pair is held to the bit-identity contract.
func TestCheckpointRoundTripAllPrefetchers(t *testing.T) {
	pfs := map[string]func() prefetch.Prefetcher{
		"none":     func() prefetch.Prefetcher { return prefetch.None{} },
		"nextline": func() prefetch.Prefetcher { return prefetch.NewNextLine(2) },
		"pdip":     func() prefetch.Prefetcher { return pdip.New(pdip.DefaultConfig()) },
		"eip":      func() prefetch.Prefetcher { return eip.New(eip.DefaultConfig()) },
		"eip-anal": func() prefetch.Prefetcher { return eip.New(eip.AnalyticalConfig()) },
		"rdip":     func() prefetch.Prefetcher { return rdip.New(rdip.DefaultConfig()) },
		"fnlmma":   func() prefetch.Prefetcher { return fnlmma.New(fnlmma.DefaultConfig()) },
	}
	prog := testProgram(12)
	for name, mk := range pfs {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := testConfig(12)
			c.Prefetcher = mk()
			co := MustNew(prog, c)
			if err := co.Run(30011); err != nil {
				t.Fatal(err)
			}
			cf := c
			cf.Prefetcher = mk()
			fork := snapshotRoundTrip(t, co, cf)
			diffCores(t, name, co, fork, 30011)
		})
	}
}

// TestCheckpointDeterministicBytes requires the serialized form to be a
// pure function of simulator state: snapshotting the same core twice, and
// snapshotting a restored fork, must produce byte-identical encodings.
// Content-addressed disk caching depends on this (same state ⇒ same key).
func TestCheckpointDeterministicBytes(t *testing.T) {
	prog := testProgram(13)
	c := testConfig(13)
	c.Prefetcher = pdip.New(pdip.DefaultConfig())
	c.CollectSets = true
	co := MustNew(prog, c)
	if err := co.Run(40009); err != nil {
		t.Fatal(err)
	}
	enc := func(co *Core) []byte {
		st, err := co.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := checkpoint.Encode(&buf, st); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := enc(co), enc(co)
	if !bytes.Equal(a, b) {
		t.Error("two snapshots of the same core encode differently (nondeterministic serialization)")
	}
	fork := snapshotRoundTrip(t, co, c2WithFreshPrefetcher(c))
	if !bytes.Equal(a, enc(fork)) {
		t.Error("a restored fork encodes differently from its source snapshot")
	}
}

// TestCheckpointVersionMismatch pins the refusal path: a snapshot from a
// different state-format version must be rejected, never half-restored.
func TestCheckpointVersionMismatch(t *testing.T) {
	prog := testProgram(14)
	c := testConfig(14)
	co := MustNew(prog, c)
	if err := co.Run(5000); err != nil {
		t.Fatal(err)
	}
	st, err := co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st.Version = checkpoint.FormatVersion + 1
	if _, err := NewFromSnapshot(prog, c, st); err == nil {
		t.Error("NewFromSnapshot accepted a snapshot with a future format version")
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Decode(&buf); err == nil {
		t.Error("Decode accepted a stream with a future format version")
	}
}
