package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
	"pdip/internal/mem"
	"pdip/internal/pipeline"
)

// decodeStage moves uops from the fetch→decode latch into the ROB, up to
// the decode width, performing allocation work on the way: execution
// latency assignment, data-side memory access messages, and resteer
// scheduling for mispredicted branches. It also does the top-down
// issue-slot accounting and decode-starvation attribution (Figure 1).
// It owns the frontend.starve.* and core.topdown.* counters.
type decodeStage struct {
	co *Core
	// lastSeq tracks uop sequence numbers to assert the fetch→decode
	// latch delivers in program order when invariants are armed.
	lastSeq uint64
}

// Name implements pipeline.Stage.
func (s *decodeStage) Name() string { return "decode" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *decodeStage) Tick(now int64) {
	co := s.co
	ct := &co.ct.decode
	width := co.cfg.DecodeWidth
	moved := 0
	robFull := false
	for moved < width {
		if co.rob.Full() {
			robFull = true
			break
		}
		u, ok := co.decodeQ.Peek()
		if !ok || u.AvailableAt > now {
			break
		}
		co.decodeQ.Pop()
		if invariant.Enabled {
			if u.Seq <= s.lastSeq {
				invariant.Failf("decode: uop seq %d not after previously decoded seq %d", u.Seq, s.lastSeq)
			}
			s.lastSeq = u.Seq
		}
		s.allocate(u, now)
		moved++
	}

	// Top-down issue-slot accounting (Figure 1).
	leftover := uint64(width - moved)
	if robFull {
		ct.tdBackend.Add(leftover)
	} else {
		ct.tdFrontend.Add(leftover)
	}

	// Decode starvation: nothing delivered while the back-end could
	// accept. Attribute to the line blocking the IFU, if it missed.
	if moved == 0 && !robFull {
		ct.decodeStarved.Inc()
		switch {
		case s.blockingEpisodeStarve(now):
			ct.starvedOnMiss.Inc()
		case co.ifuEntry == nil && co.ftq.Len() == 0:
			ct.starveNoEntry.Inc()
		case co.decodeQ.Len() > 0:
			ct.starvePipe.Inc()
		default:
			ct.starveOther.Inc()
		}
	}
}

// blockingEpisodeStarve attributes a starved cycle to the missed line
// episode the IFU is stalled on, returning false when the bubble has
// another cause (e.g. post-resteer refill).
func (s *decodeStage) blockingEpisodeStarve(now int64) bool {
	co := s.co
	e := co.ifuEntry
	if e == nil || now >= e.ReadyAt {
		return false
	}
	for _, ep := range e.Episodes {
		if ep.Missed && ep.DoneCycle > now {
			ep.Starve++
			// Issue-queue-empty proxy: the back-end has (nearly) run out
			// of work. The modelled ROB stands in for the issue queue, so
			// the threshold is an IQ-sized occupancy, not strict empty.
			if co.rob.Len() < 64 {
				ep.BackendEmpty = true
			}
			return true
		}
	}
	return false
}

// allocate moves a uop into the ROB, assigning completion time, issuing
// its data access, and scheduling the resteer for mispredicted branches.
func (s *decodeStage) allocate(u *frontend.Uop, now int64) {
	co := s.co
	ct := &co.ct.decode
	if u.WrongPath {
		ct.wrongPath.Inc()
		ct.tdBadSpec.Inc()
	} else {
		ct.tdRetiring.Inc()
	}

	switch {
	case u.IsMemOp:
		res := co.dport.Send(mem.Req{Op: mem.OpData, Line: u.DataLine, At: now})
		u.DoneAt = res.Done + 1
	case u.Inst.Kind.IsBranch():
		u.DoneAt = now + int64(co.cfg.BranchResolveLat)
	default:
		u.DoneAt = now + int64(co.cfg.ExecLat)
	}

	if u.Mispredict {
		at := u.DoneAt
		if u.ResolveAtDecode {
			at = now
		}
		co.pendingResteer = resteerEvent{
			at:      at,
			target:  u.CorrectTarget,
			trigger: u.TriggerBlock,
			cause:   u.Cause,
		}
		co.hasResteer = true
	}
	co.rob.Push(u)
}

// NextEventAt implements pipeline.Sleeper. Decode next acts when the latch
// head becomes available with ROB headroom; a ROB-full stall waits on
// retirement (the retire stage's bound). Beyond acting, decode's per-cycle
// starvation attribution can change target when the clock crosses a missed
// episode's fill completion or the blocking entry's ReadyAt, so those are
// events too — the bulk replay in AccountStall is only valid across a
// window where the attribution is constant.
func (s *decodeStage) NextEventAt(now int64) int64 {
	co := s.co
	next := pipeline.Never
	if !co.rob.Full() {
		if u, ok := co.decodeQ.Peek(); ok {
			t := u.AvailableAt
			if t < now+1 {
				t = now + 1
			}
			if t < next {
				next = t
			}
		}
	}
	if e := co.ifuEntry; e != nil && now < e.ReadyAt {
		if e.ReadyAt < next {
			next = e.ReadyAt
		}
		for _, ep := range e.Episodes {
			if ep.Missed && ep.DoneCycle > now && ep.DoneCycle < next {
				next = ep.DoneCycle
			}
		}
	}
	return next
}

// AccountStall implements pipeline.StallAccounter: it applies, in one bulk
// update, the issue-slot accounting and starvation attribution Tick would
// have done on each of the n skipped cycles. The driver guarantees (via
// the NextEventAt bounds) that every skipped cycle would have behaved
// identically: moved == 0, constant ROB fullness/occupancy class, and a
// constant blocking episode.
func (s *decodeStage) AccountStall(now int64, n int64) {
	co := s.co
	ct := &co.ct.decode
	width := uint64(co.cfg.DecodeWidth)
	nn := uint64(n)
	if co.rob.Full() {
		ct.tdBackend.Add(width * nn)
		return
	}
	ct.tdFrontend.Add(width * nn)
	ct.decodeStarved.Add(nn)
	switch {
	case s.blockingEpisodeStarveN(now, n):
		ct.starvedOnMiss.Add(nn)
	case co.ifuEntry == nil && co.ftq.Len() == 0:
		ct.starveNoEntry.Add(nn)
	case co.decodeQ.Len() > 0:
		ct.starvePipe.Add(nn)
	default:
		ct.starveOther.Add(nn)
	}
}

// blockingEpisodeStarveN is blockingEpisodeStarve's bulk form: attribute n
// consecutive starved cycles to the blocking missed episode.
func (s *decodeStage) blockingEpisodeStarveN(now int64, n int64) bool {
	co := s.co
	e := co.ifuEntry
	if e == nil || now >= e.ReadyAt {
		return false
	}
	for _, ep := range e.Episodes {
		if ep.Missed && ep.DoneCycle > now {
			ep.Starve += int(n)
			if co.rob.Len() < 64 {
				ep.BackendEmpty = true
			}
			return true
		}
	}
	return false
}
