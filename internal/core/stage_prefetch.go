package core

import (
	"pdip/internal/invariant"
	"pdip/internal/pipeline"
)

// prefetchDrainStage moves retire-time prefetch requests (next-line,
// RDIP, FNL+MMA style prefetchers) into the PQ, then drains the PQ into
// the instruction port as OpPrefetch messages — the last stage of the
// cycle, so prefetches issued this cycle see the post-fetch MSHR state,
// matching the paper's demand-first discipline.
type prefetchDrainStage struct {
	co *Core
	// lastTick asserts the driver's clock is strictly monotonic across
	// this (final) stage when invariants are armed.
	lastTick int64
}

// Name implements pipeline.Stage.
func (s *prefetchDrainStage) Name() string { return "prefetch-drain" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *prefetchDrainStage) Tick(now int64) {
	co := s.co
	if invariant.Enabled {
		if s.lastTick != 0 && now <= s.lastTick {
			invariant.Failf("prefetch-drain: tick at cycle %d not after previous tick at %d", now, s.lastTick)
		}
		s.lastTick = now
	}
	s.drainRetireEmitter(now)
	co.pq.Drain(co.iport, now, co.priorityOf)
}

// NextEventAt implements pipeline.Sleeper. A non-empty PQ drains every
// cycle; an empty one only receives work from retires and FTQ inserts,
// both of which are other stages' events (and the retire emitter's pending
// buffer is always drained within the same Tick it was filled, so it is
// empty between cycles).
func (s *prefetchDrainStage) NextEventAt(now int64) int64 {
	if s.co.pq.Len() > 0 {
		return now + 1
	}
	return pipeline.Never
}

// drainRetireEmitter collects pending retire-time requests from the
// prefetcher, applying the same FTQ duplicate suppression as the
// FTQ-insert path.
func (s *prefetchDrainStage) drainRetireEmitter(now int64) {
	co := s.co
	if co.pfEmitter == nil {
		return
	}
	co.reqBuf = co.pfEmitter.TakePending(co.reqBuf[:0])
	for _, r := range co.reqBuf {
		if co.ftq.Contains(r.Line) {
			co.ct.prefetch.pfDroppedFTQ.Inc()
			continue
		}
		if co.pfSet != nil {
			co.pfSet[r.Line] = now
		}
		co.pq.Enqueue(r)
	}
}
