package core

import (
	"pdip/internal/metrics"
	"pdip/internal/stats"
)

// counters holds the registry-owned counters behind stats.Core, grouped
// by the pipeline stage that owns (increments) them. The stages increment
// through these pointers (resolved once at construction — no lookups or
// reflection on the hot path); Result() materialises the stats.Core value
// struct from them, so the snapshot API is a view over the registry.
// Registered metric names are stable across the stage decomposition: the
// grouping is an ownership structure, not a renaming.
type counters struct {
	pipe     pipeCounters
	retire   retireCounters
	resteer  resteerCounters
	decode   decodeCounters
	prefetch prefetchCounters
}

// pipeCounters is per-cycle bookkeeping owned by the cycle loop itself.
//
//lint:owner core.go
type pipeCounters struct {
	cycles *metrics.Counter
	// ftqOcc samples FTQ occupancy once per cycle (decoupling depth).
	ftqOcc *metrics.Histogram
}

// retireCounters is owned by the retire stage (instruction retirement and
// the FEC machinery evaluated there).
type retireCounters struct {
	instructions                   *metrics.Counter
	linesRetired                   *metrics.Counter
	fecLines, fecRepeatLines       *metrics.Counter
	highCostFECLines               *metrics.Counter
	highCostBackend                *metrics.Counter
	fecStallCycles, fecCoveredLate *metrics.Counter
	shadowCovered, nonFECStall     *metrics.Counter
}

// resteerCounters is owned by the resteer stage.
type resteerCounters struct {
	mispredict, btbMiss, ret *metrics.Counter
}

// decodeCounters is owned by the decode/allocate stage (issue-slot
// top-down accounting and starvation attribution happen there).
type decodeCounters struct {
	wrongPath                                    *metrics.Counter
	decodeStarved                                *metrics.Counter
	starvedOnMiss, starveNoEntry                 *metrics.Counter
	starvePipe, starveOther                      *metrics.Counter
	tdRetiring, tdBadSpec, tdFrontend, tdBackend *metrics.Counter
}

// prefetchCounters is shared by the two stages that enqueue prefetch
// requests (predict and prefetch-drain): both apply the FTQ duplicate
// suppression and account drops to the same counter.
//
//lint:owner stage_predict.go stage_prefetch.go
type prefetchCounters struct {
	pfDroppedFTQ *metrics.Counter
}

func newCounters(reg *metrics.Registry) counters {
	return counters{
		pipe: pipeCounters{
			cycles: reg.Counter("core.cycles"),
			ftqOcc: reg.Histogram("frontend.ftq_occupancy", 0, 2, 4, 8, 12, 16, 20, 24),
		},
		retire: retireCounters{
			instructions:     reg.Counter("core.instructions"),
			linesRetired:     reg.Counter("core.lines_retired"),
			fecLines:         reg.Counter("core.fec.lines"),
			fecRepeatLines:   reg.Counter("core.fec.repeat_lines"),
			highCostFECLines: reg.Counter("core.fec.high_cost_lines"),
			highCostBackend:  reg.Counter("core.fec.high_cost_backend"),
			fecStallCycles:   reg.Counter("core.fec.stall_cycles"),
			fecCoveredLate:   reg.Counter("core.fec.covered_late"),
			shadowCovered:    reg.Counter("core.fec.shadow_covered"),
			nonFECStall:      reg.Counter("core.fec.non_fec_stall_cycles"),
		},
		resteer: resteerCounters{
			mispredict: reg.Counter("frontend.resteer.mispredict"),
			btbMiss:    reg.Counter("frontend.resteer.btb_miss"),
			ret:        reg.Counter("frontend.resteer.return"),
		},
		decode: decodeCounters{
			wrongPath:     reg.Counter("core.wrong_path_instructions"),
			decodeStarved: reg.Counter("frontend.decode_starved_cycles"),
			starvedOnMiss: reg.Counter("frontend.starve.on_miss"),
			starveNoEntry: reg.Counter("frontend.starve.no_entry"),
			starvePipe:    reg.Counter("frontend.starve.pipe"),
			starveOther:   reg.Counter("frontend.starve.other"),
			tdRetiring:    reg.Counter("core.topdown.retiring"),
			tdBadSpec:     reg.Counter("core.topdown.bad_speculation"),
			tdFrontend:    reg.Counter("core.topdown.frontend_bound"),
			tdBackend:     reg.Counter("core.topdown.backend_bound"),
		},
		prefetch: prefetchCounters{
			pfDroppedFTQ: reg.Counter("frontend.pf_dropped_ftq"),
		},
	}
}

// statsCore materialises the stats.Core snapshot from the registry
// counters — the view the Result API and all derived metrics sit on.
func (ct *counters) statsCore() stats.Core {
	return stats.Core{
		Cycles:                ct.pipe.cycles.Load(),
		Instructions:          ct.retire.instructions.Load(),
		WrongPathInstructions: ct.decode.wrongPath.Load(),
		ResteerMispredict:     ct.resteer.mispredict.Load(),
		ResteerBTBMiss:        ct.resteer.btbMiss.Load(),
		ResteerReturn:         ct.resteer.ret.Load(),
		DecodeStarvedCycles:   ct.decode.decodeStarved.Load(),
		StarvedOnMiss:         ct.decode.starvedOnMiss.Load(),
		StarveNoEntry:         ct.decode.starveNoEntry.Load(),
		StarvePipe:            ct.decode.starvePipe.Load(),
		StarveOther:           ct.decode.starveOther.Load(),
		LinesRetired:          ct.retire.linesRetired.Load(),
		FECLines:              ct.retire.fecLines.Load(),
		FECRepeatLines:        ct.retire.fecRepeatLines.Load(),
		HighCostFECLines:      ct.retire.highCostFECLines.Load(),
		HighCostBackend:       ct.retire.highCostBackend.Load(),
		FECStallCycles:        ct.retire.fecStallCycles.Load(),
		FECCoveredLate:        ct.retire.fecCoveredLate.Load(),
		ShadowCovered:         ct.retire.shadowCovered.Load(),
		NonFECStall:           ct.retire.nonFECStall.Load(),
		PFDroppedFTQ:          ct.prefetch.pfDroppedFTQ.Load(),
		TopDown: stats.TopDown{
			Retiring:       ct.decode.tdRetiring.Load(),
			BadSpeculation: ct.decode.tdBadSpec.Load(),
			FrontendBound:  ct.decode.tdFrontend.Load(),
			BackendBound:   ct.decode.tdBackend.Load(),
		},
	}
}

// registerMetrics wires every measuring component into the core's
// registry: cache levels, prefetch queue, BPU, the prefetcher under test
// (when it publishes metrics), the FEC diagnostic histograms, and the
// derived gauges the paper reports.
func (co *Core) registerMetrics() {
	reg := co.reg
	co.hier.L1I.RegisterMetrics(reg, "cache.l1i")
	co.hier.L1D.RegisterMetrics(reg, "cache.l1d")
	co.hier.L2.RegisterMetrics(reg, "cache.l2")
	co.hier.L3.RegisterMetrics(reg, "cache.l3")
	co.pq.RegisterMetrics(reg, "pq")
	co.bp.RegisterMetrics(reg)
	co.rob.RegisterMetrics(reg)
	if m, ok := co.pf.(metrics.Registrant); ok {
		m.RegisterMetrics(reg)
	}
	reg.Gauge("prefetcher.storage_kb").Set(co.pf.StorageKB())

	// FEC instance classification (populated under CollectSets; zero
	// otherwise — kept registered so snapshot shape is policy-independent).
	reg.CounterFunc("core.fec.req_age.never", func() uint64 { return co.fecReqAge[0] })
	reg.CounterFunc("core.fec.req_age.gt_10k", func() uint64 { return co.fecReqAge[1] })
	reg.CounterFunc("core.fec.req_age.100_to_10k", func() uint64 { return co.fecReqAge[2] })
	reg.CounterFunc("core.fec.req_age.le_100", func() uint64 { return co.fecReqAge[3] })
	reg.CounterFunc("core.fec.holds.no_trigger", func() uint64 { return co.fecHolds[0] })
	reg.CounterFunc("core.fec.holds.table_holds_pair", func() uint64 { return co.fecHolds[1] })
	reg.CounterFunc("core.fec.holds.table_missing_pair", func() uint64 { return co.fecHolds[2] })

	// Derived metrics (the paper's reported numbers), computed at snapshot
	// time from the same counters Result exposes.
	derived := func(name string, fn func(*Result) float64) {
		reg.GaugeFunc(name, func() float64 {
			r := co.liteResult()
			return fn(&r)
		})
	}
	derived("derived.ipc", func(r *Result) float64 { return r.IPC() })
	derived("derived.l1i_mpki", func(r *Result) float64 { return r.L1IMPKI() })
	derived("derived.l2i_mpki", func(r *Result) float64 { return r.L2IMPKI() })
	derived("derived.l2d_mpki", func(r *Result) float64 { return r.L2DMPKI() })
	derived("derived.l3_mpki", func(r *Result) float64 { return r.L3MPKI() })
	derived("derived.ppki", func(r *Result) float64 { return r.PPKI() })
	derived("derived.prefetch_accuracy", func(r *Result) float64 { return r.PrefetchAccuracy() })
	derived("derived.late_prefetch_rate", func(r *Result) float64 { return r.LatePrefetchRate() })
	derived("derived.useless_prefetch_pki", func(r *Result) float64 { return r.UselessPrefetchPKI() })
	derived("derived.fec_line_pct", func(r *Result) float64 { return r.FECLinePct() })
	derived("derived.fec_stall_share", func(r *Result) float64 { return r.FECStallShare() })
}

// liteResult builds a Result view without copying the coverage sets —
// enough for every derived metric, cheap enough for snapshot time.
func (co *Core) liteResult() Result {
	return Result{
		Core: co.ct.statsCore(),
		L1I:  co.hier.L1I.Stats,
		L1D:  co.hier.L1D.Stats,
		L2:   co.hier.L2.Stats,
		L3:   co.hier.L3.Stats,
		PQ:   co.pq.Stats,
		BPU:  co.bp.Stats,
	}
}

// Metrics returns the core's metric registry. The registry is owned by the
// core's goroutine; snapshot it before sharing across goroutines.
func (co *Core) Metrics() *metrics.Registry { return co.reg }

// MetricsSnapshot captures every registered metric, stable-ordered.
// (Snapshot is the full simulator-state capture in checkpoint.go.)
func (co *Core) MetricsSnapshot() metrics.Snapshot { return co.reg.Snapshot() }

// EnableSampling records a full registry snapshot every everyN retired
// instructions (measured window), so IPC/MPKI trajectories can be dumped
// for any run. Zero disables sampling.
func (co *Core) EnableSampling(everyN uint64) {
	co.sampleEvery = everyN
}

// Samples returns the interval snapshots collected since the last
// ResetStats. The slice is owned by the core; copy it before mutating.
func (co *Core) Samples() []metrics.Sample { return co.samples }

// SetSampleHook installs fn as a streaming observer: it is called with
// each interval sample immediately after the sample is recorded (still
// inside the retire stage, in deterministic order). The hook is pure
// observation — samples accumulate in Samples() regardless — and is not
// simulator state: forks and checkpoints never carry it.
func (co *Core) SetSampleHook(fn func(metrics.Sample)) { co.sampleHook = fn }
