package core

import (
	"fmt"

	"pdip/internal/backend"
	"pdip/internal/bpu"
	"pdip/internal/cache"
	"pdip/internal/cfg"
	"pdip/internal/frontend"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/metrics"
	"pdip/internal/prefetch"
	"pdip/internal/rng"
	"pdip/internal/trace"
)

// dataBase places the synthetic data region far from code.
const dataBase isa.Addr = 0x10_0000_0000

// resteerEvent is the single pending front-end redirect.
type resteerEvent struct {
	at      int64
	target  isa.Addr
	trigger isa.Addr
	cause   frontend.ResteerCause
}

// Core is one simulated core bound to a program.
type Core struct {
	cfg  Config
	prog *cfg.Program

	hier *mem.Hierarchy
	bp   *bpu.BPU
	iag  *frontend.IAG
	ftq  *frontend.FTQ
	pq   *prefetch.Queue
	rob  *backend.ROB
	pf   prefetch.Prefetcher

	// decodeQ is the fetch/decode buffer between IFU and allocation.
	decodeQ []*frontend.Uop
	dqHead  int

	ifuEntry *frontend.FTQEntry

	now int64
	seq uint64
	// retired counts retired instructions since construction (Run loop
	// control; stats.Instructions resets with ResetStats).
	retired uint64

	pendingResteer *resteerEvent
	iagResumeAt    int64

	// Resteer shadow state (§4.2 trigger association).
	shadowTrigger   isa.Addr
	shadowWasReturn bool
	shadowLeft      int

	lastTakenBlock isa.Addr

	// promoted holds EMISSARY-marked FEC lines; future fills of these
	// lines carry the P-bit.
	promoted map[isa.Addr]struct{}
	// fecEver holds every line that ever met the FEC conditions;
	// FEC-Ideal serves these at L1I latency (the §3 ceiling).
	fecEver map[isa.Addr]struct{}

	// Coverage sets (CollectSets only). pfSet records the cycle of the
	// most recent PQ request per line.
	fecSet map[isa.Addr]struct{}
	pfSet  map[isa.Addr]int64
	// fecReqAge histograms FEC instances by age of the last prefetch
	// request for their line: [never, >10K cycles, 100..10K, <=100].
	fecReqAge [4]uint64
	// fecHolds classifies FEC instances (CollectSets + PDIP only):
	// [no-trigger, table-holds-pair, table-missing-pair].
	fecHolds [3]uint64
	// fecTrace samples FEC instances for diagnostics (CollectSets only).
	fecTrace []FECInstance

	dataRng  *rng.RNG
	promoRng *rng.RNG

	// reg is the unified metrics registry every component publishes into;
	// ct holds the core's own counters, resolved once at construction.
	reg *metrics.Registry
	ct  counters

	// sampleEvery > 0 records a registry snapshot every that many retired
	// instructions; samples accumulate until ResetStats.
	sampleEvery uint64
	samples     []metrics.Sample

	reqBuf    []prefetch.Request
	retireBuf []*frontend.Uop

	// Optional prefetcher extensions, resolved once at construction.
	pfEmitter  prefetch.RetireEmitter
	pfCallsRet interface {
		OnCallReturn(isCall bool, pc, returnAddr isa.Addr)
	}
}

// New builds a core over prog with the given configuration.
func New(prog *cfg.Program, c Config) (*Core, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.New(c.Mem)
	if err != nil {
		return nil, err
	}
	bp := bpu.New(c.BPU)
	oracle := trace.New(prog, c.Seed)
	pf := c.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	pq := prefetch.NewQueue(c.PQDepth)
	pq.ZeroCost = c.ZeroCostPrefetch
	if c.PQReserveMSHRs != 0 {
		pq.ReserveMSHRs = c.PQReserveMSHRs
	}
	if c.PQReserveMSHRs < 0 {
		pq.ReserveMSHRs = 0
	}
	reg := metrics.NewRegistry()
	co := &Core{
		cfg:      c,
		prog:     prog,
		hier:     hier,
		bp:       bp,
		iag:      frontend.NewIAG(bp, oracle, c.MaxEntryInsts),
		ftq:      frontend.NewFTQ(c.FTQDepth),
		pq:       pq,
		rob:      backend.NewROB(c.ROBSize),
		pf:       pf,
		promoted: make(map[isa.Addr]struct{}),
		fecEver:  make(map[isa.Addr]struct{}),
		dataRng:  rng.New(c.Seed ^ 0xda7a),
		promoRng: rng.New(c.Seed ^ 0xe351),
		reg:      reg,
		ct:       newCounters(reg),
	}
	co.registerMetrics()
	if c.CollectSets {
		co.fecSet = make(map[isa.Addr]struct{})
		co.pfSet = make(map[isa.Addr]int64)
	}
	if e, ok := pf.(prefetch.RetireEmitter); ok {
		co.pfEmitter = e
	}
	if o, ok := pf.(interface {
		OnCallReturn(isCall bool, pc, returnAddr isa.Addr)
	}); ok {
		co.pfCallsRet = o
	}
	return co, nil
}

// MustNew is New for known-good configurations.
func MustNew(prog *cfg.Program, c Config) *Core {
	co, err := New(prog, c)
	if err != nil {
		panic(err)
	}
	return co
}

// Cycles returns the current cycle.
func (co *Core) Cycles() int64 { return co.now }

// Retired returns total retired instructions since construction.
func (co *Core) Retired() uint64 { return co.retired }

// Run advances the simulation until n more instructions retire. It returns
// an error if the cycle budget explodes (misconfiguration guard).
func (co *Core) Run(n uint64) error {
	target := co.retired + n
	maxPer := co.cfg.MaxCyclesPerInst
	if maxPer <= 0 {
		maxPer = 400
	}
	budget := co.now + int64(n)*int64(maxPer) + 100_000
	for co.retired < target {
		co.step()
		if co.now > budget {
			return fmt.Errorf("core: cycle budget exceeded (%d cycles, %d/%d instructions) — likely a deadlock or pathological configuration",
				co.now, co.retired, target)
		}
	}
	return nil
}

// ResetStats zeroes all measurement counters while keeping architectural
// and microarchitectural state (caches, predictors, tables) warm. Call
// after the warmup window, mirroring the paper's methodology (§6.1).
func (co *Core) ResetStats() {
	co.reg.Reset()
	co.samples = co.samples[:0]
	co.hier.L1I.Stats = cache.Stats{}
	co.hier.L1D.Stats = cache.Stats{}
	co.hier.L2.Stats = cache.Stats{}
	co.hier.L3.Stats = cache.Stats{}
	co.pq.Stats = prefetch.Stats{}
	co.bp.Stats = bpu.Stats{}
	co.rob.Stats = backend.Stats{}
	if r, ok := co.pf.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
}

// step advances one cycle.
func (co *Core) step() {
	co.now++
	co.ct.cycles.Inc()
	co.ct.ftqOcc.Observe(float64(co.ftq.Len()))

	co.retire()
	co.applyResteer()
	co.decode()
	width := co.cfg.FetchWidth
	if width <= 0 {
		width = 1
	}
	for i := 0; i < width; i++ {
		co.fetch()
	}
	iag := co.cfg.IAGWidth
	if iag <= 0 {
		iag = 1
	}
	for i := 0; i < iag; i++ {
		co.predict()
	}
	co.drainRetireEmitter()
	co.pq.Drain(co.hier, co.now, co.priorityOf)
}

// drainRetireEmitter moves retire-time prefetch requests (next-line, RDIP,
// FNL+MMA style prefetchers) into the PQ.
func (co *Core) drainRetireEmitter() {
	if co.pfEmitter == nil {
		return
	}
	co.reqBuf = co.pfEmitter.TakePending(co.reqBuf[:0])
	for _, r := range co.reqBuf {
		if co.ftq.Contains(r.Line) {
			co.ct.pfDroppedFTQ.Inc()
			continue
		}
		if co.pfSet != nil {
			co.pfSet[r.Line] = co.now
		}
		co.pq.Enqueue(r)
	}
}

// priorityOf reports whether a prefetched line should carry the EMISSARY
// P-bit (PDIP+EMISSARY physical synergy: one FEC-tracking mechanism).
func (co *Core) priorityOf(line isa.Addr) bool {
	if !co.cfg.Emissary && !co.cfg.FECIdeal {
		return false
	}
	_, ok := co.promoted[line]
	return ok
}

// ---------------------------------------------------------------- retire

func (co *Core) retire() {
	co.retireBuf = co.rob.Retire(co.now, co.cfg.RetireWidth, co.retireBuf[:0])
	for _, u := range co.retireBuf {
		co.retireUop(u)
	}
}

func (co *Core) retireUop(u *frontend.Uop) {
	co.retired++
	co.ct.instructions.Inc()
	if co.sampleEvery > 0 {
		if n := co.ct.instructions.Load(); n%co.sampleEvery == 0 {
			co.samples = append(co.samples, metrics.Sample{Instructions: n, Metrics: co.reg.Snapshot()})
		}
	}

	if ep := u.Ep; ep != nil && !ep.Processed {
		ep.Processed = true
		co.processEpisode(ep)
	}
	if u.Inst.Kind.IsBranch() && u.Inst.Taken {
		co.lastTakenBlock = u.Inst.PC.Line()
	}
	if co.pfCallsRet != nil {
		if u.Inst.Kind.IsCall() {
			co.pfCallsRet.OnCallReturn(true, u.Inst.PC, u.Inst.FallThrough())
		} else if u.Inst.Kind == isa.Return {
			co.pfCallsRet.OnCallReturn(false, u.Inst.PC, 0)
		}
	}
}

// processEpisode evaluates the FEC conditions for a retired line episode
// and feeds EMISSARY promotion and the prefetcher (§2.1, §4.1, §4.2).
func (co *Core) processEpisode(ep *frontend.LineEpisode) {
	co.ct.linesRetired.Inc()
	fec := ep.Missed && ep.Starve > 0
	highCost := fec && ep.Starve > co.cfg.HighCostThreshold

	if ep.WasPrefetch && ep.ResteerTrigger != 0 && !fec {
		co.ct.shadowCovered.Inc()
	}
	if fec {
		if co.pfSet != nil && len(co.fecTrace) < 4000 {
			co.fecTrace = append(co.fecTrace, FECInstance{
				Line:    ep.Line,
				Trigger: ep.ResteerTrigger,
				Starve:  ep.Starve,
				Served:  ep.ServedBy,
			})
		}
		if co.pfSet != nil {
			if holder, ok := co.pf.(interface{ DebugHolds(t, l isa.Addr) bool }); ok {
				switch {
				case ep.ResteerTrigger == 0:
					co.fecHolds[0]++
				case holder.DebugHolds(ep.ResteerTrigger, ep.Line):
					co.fecHolds[1]++
				default:
					co.fecHolds[2]++
				}
			}
		}
		if co.pfSet != nil {
			if at, ok := co.pfSet[ep.Line]; !ok {
				co.fecReqAge[0]++
			} else if age := ep.FetchCycle - at; age > 10000 {
				co.fecReqAge[1]++
			} else if age > 100 {
				co.fecReqAge[2]++
			} else {
				co.fecReqAge[3]++
			}
		}
		co.ct.fecLines.Inc()
		if ep.WasPrefetch {
			co.ct.fecCoveredLate.Inc()
		}
		if _, seen := co.fecEver[ep.Line]; seen {
			co.ct.fecRepeatLines.Inc()
		}
		co.ct.fecStallCycles.Add(uint64(ep.Starve))
		if highCost {
			co.ct.highCostFECLines.Inc()
			if ep.BackendEmpty {
				co.ct.highCostBackend.Inc()
			}
		}
		co.fecEver[ep.Line] = struct{}{}
		if co.fecSet != nil {
			co.fecSet[ep.Line] = struct{}{}
		}
		if (co.cfg.Emissary || co.cfg.FECIdeal) && co.promoRng.Bool(co.cfg.EmissaryPromoteProb) {
			co.promoted[ep.Line] = struct{}{}
			co.hier.PromoteInstLine(ep.Line)
		}
	} else if ep.Starve > 0 {
		co.ct.nonFECStall.Add(uint64(ep.Starve))
	}

	co.pf.OnLineRetired(prefetch.RetireEvent{
		Line:             ep.Line,
		Missed:           ep.Missed,
		ServedBy:         ep.ServedBy,
		FetchCycle:       ep.FetchCycle,
		FetchLatency:     ep.DoneCycle - ep.FetchCycle,
		StarveCycles:     ep.Starve,
		BackendEmpty:     ep.BackendEmpty,
		FEC:              fec,
		HighCost:         highCost,
		ResteerTrigger:   ep.ResteerTrigger,
		ResteerWasReturn: ep.ResteerWasReturn,
		LastTakenBlock:   co.lastTakenBlock,
	})
}

// --------------------------------------------------------------- resteer

func (co *Core) applyResteer() {
	ev := co.pendingResteer
	if ev == nil || co.now < ev.at {
		return
	}
	co.pendingResteer = nil

	switch ev.cause {
	case frontend.ResteerBTBMiss:
		co.ct.resteerBTBMiss.Inc()
	case frontend.ResteerReturn:
		co.ct.resteerReturn.Inc()
	default:
		co.ct.resteerMispredict.Inc()
	}

	// Flush speculative front-end state. The PQ is intentionally not
	// flushed: its entries are prefetch hints, not control flow.
	co.ftq.Flush()
	if co.ifuEntry != nil && co.ifuEntry.WrongPath {
		co.ifuEntry = nil
	}
	co.filterDecodeQ()
	co.rob.SquashWrongPath()

	co.iag.Resteer()
	co.iagResumeAt = co.now + int64(co.cfg.ResteerPenalty)

	co.shadowTrigger = ev.trigger
	co.shadowWasReturn = ev.cause == frontend.ResteerReturn
	co.shadowLeft = co.cfg.ResteerShadowBlocks
}

// filterDecodeQ drops wrong-path uops from the decode buffer.
func (co *Core) filterDecodeQ() {
	kept := co.decodeQ[:0]
	for i := co.dqHead; i < len(co.decodeQ); i++ {
		if !co.decodeQ[i].WrongPath {
			kept = append(kept, co.decodeQ[i])
		}
	}
	co.decodeQ = kept
	co.dqHead = 0
}

// ---------------------------------------------------------------- decode

func (co *Core) decode() {
	width := co.cfg.DecodeWidth
	moved := 0
	robFull := false
	for moved < width {
		if co.rob.Full() {
			robFull = true
			break
		}
		if co.dqHead >= len(co.decodeQ) {
			break
		}
		u := co.decodeQ[co.dqHead]
		if u.AvailableAt > co.now {
			break
		}
		co.dqHead++
		co.allocate(u)
		moved++
	}
	if co.dqHead == len(co.decodeQ) && len(co.decodeQ) > 0 {
		co.decodeQ = co.decodeQ[:0]
		co.dqHead = 0
	}

	// Top-down issue-slot accounting (Figure 1).
	leftover := uint64(width - moved)
	if robFull {
		co.ct.tdBackend.Add(leftover)
	} else {
		co.ct.tdFrontend.Add(leftover)
	}

	// Decode starvation: nothing delivered while the back-end could
	// accept. Attribute to the line blocking the IFU, if it missed.
	if moved == 0 && !robFull {
		co.ct.decodeStarved.Inc()
		switch {
		case co.blockingEpisodeStarve():
			co.ct.starvedOnMiss.Inc()
		case co.ifuEntry == nil && co.ftq.Len() == 0:
			co.ct.starveNoEntry.Inc()
		case co.dqHead < len(co.decodeQ):
			co.ct.starvePipe.Inc()
		default:
			co.ct.starveOther.Inc()
		}
	}
}

// blockingEpisodeStarve attributes a starved cycle to the missed line
// episode the IFU is stalled on, returning false when the bubble has
// another cause (e.g. post-resteer refill).
func (co *Core) blockingEpisodeStarve() bool {
	e := co.ifuEntry
	if e == nil || co.now >= e.ReadyAt {
		return false
	}
	for _, ep := range e.Episodes {
		if ep.Missed && ep.DoneCycle > co.now {
			ep.Starve++
			// Issue-queue-empty proxy: the back-end has (nearly) run out
			// of work. The modelled ROB stands in for the issue queue, so
			// the threshold is an IQ-sized occupancy, not strict empty.
			if co.rob.Len() < 64 {
				ep.BackendEmpty = true
			}
			return true
		}
	}
	return false
}

// allocate moves a uop into the ROB, assigning completion time, issuing
// its data access, and scheduling the resteer for mispredicted branches.
func (co *Core) allocate(u *frontend.Uop) {
	if u.WrongPath {
		co.ct.wrongPath.Inc()
		co.ct.tdBadSpec.Inc()
	} else {
		co.ct.tdRetiring.Inc()
	}

	switch {
	case u.IsMemOp:
		res := co.hier.AccessData(u.DataLine, co.now)
		u.DoneAt = res.Done + 1
	case u.Inst.Kind.IsBranch():
		u.DoneAt = co.now + int64(co.cfg.BranchResolveLat)
	default:
		u.DoneAt = co.now + int64(co.cfg.ExecLat)
	}

	if u.Mispredict {
		at := u.DoneAt
		if u.ResolveAtDecode {
			at = co.now
		}
		co.pendingResteer = &resteerEvent{
			at:      at,
			target:  u.CorrectTarget,
			trigger: u.TriggerBlock,
			cause:   u.Cause,
		}
	}
	co.rob.Push(u)
}

// ----------------------------------------------------------------- fetch

func (co *Core) fetch() {
	// Start a new entry when idle.
	if co.ifuEntry == nil {
		e := co.ftq.Pop()
		if e == nil {
			return
		}
		co.startFetch(e)
	}
	e := co.ifuEntry
	if co.now < e.ReadyAt {
		return
	}
	// Respect the decode-buffer bound.
	if len(co.decodeQ)-co.dqHead+len(e.Insts) > co.cfg.DecodeQDepth {
		return
	}
	co.deliver(e)
	co.ifuEntry = nil
}

// startFetch issues demand accesses for every line of the entry and
// creates the fetch episodes the FEC machinery tracks.
func (co *Core) startFetch(e *frontend.FTQEntry) {
	ready := co.now
	e.Episodes = make([]*frontend.LineEpisode, len(e.Lines))
	for i, line := range e.Lines {
		ep := &frontend.LineEpisode{
			Line:             line,
			WrongPath:        e.WrongPath,
			FetchCycle:       co.now,
			ResteerTrigger:   e.ShadowTrigger,
			ResteerWasReturn: e.ShadowWasReturn,
		}
		if co.cfg.FECIdeal && co.isFECEver(line) {
			// FEC-Ideal: FEC-qualified lines always arrive with L1I hit
			// latency (§3's ceiling).
			ep.DoneCycle = co.now
		} else {
			res := co.hier.FetchInst(line, co.now, co.isPromoted(line))
			// A line still in flight at demand time (partial hit) is a
			// miss the FTQ prefetch could not fully hide — exactly the
			// class the FEC conditions are about (§2.1).
			ep.Missed = !res.L1Hit || res.WasInflight
			ep.WasPrefetch = res.WasPrefetch
			ep.ServedBy = res.ServedBy
			if res.L1Hit && !res.WasInflight {
				// Pipelined hit: latency folded into DecodePipeLat.
				ep.DoneCycle = co.now
			} else {
				ep.DoneCycle = res.Done
			}
		}
		e.Episodes[i] = ep
		if ep.DoneCycle > ready {
			ready = ep.DoneCycle
		}
	}
	e.ReadyAt = ready
	co.ifuEntry = e
}

func (co *Core) isPromoted(line isa.Addr) bool {
	if !co.cfg.Emissary && !co.cfg.FECIdeal {
		return false
	}
	_, ok := co.promoted[line]
	return ok
}

// deliver converts the fetched entry's instructions into uops.
func (co *Core) deliver(e *frontend.FTQEntry) {
	avail := co.now + int64(co.cfg.DecodePipeLat)
	epFor := func(pc isa.Addr) *frontend.LineEpisode {
		ln := pc.Line()
		for _, ep := range e.Episodes {
			if ep.Line == ln {
				return ep
			}
		}
		return e.Episodes[0]
	}
	for i := range e.Insts {
		in := e.Insts[i]
		co.seq++
		u := &frontend.Uop{
			Inst:        in,
			Seq:         co.seq,
			WrongPath:   e.WrongPath,
			Ep:          epFor(in.PC),
			AvailableAt: avail,
		}
		if in.Kind == isa.NotBranch && co.dataRng.Bool(co.cfg.MemOpFrac) {
			u.IsMemOp = true
			u.DataLine = co.genDataLine()
		}
		if e.Mispredict && i == len(e.Insts)-1 {
			u.Mispredict = true
			u.ResolveAtDecode = e.ResolveAtDecode
			u.Cause = e.Cause
			u.CorrectTarget = e.CorrectTarget
			// The PDIP trigger key is the block (line) address of the
			// trigger *instruction* (SS5.1) - stable across occurrences,
			// unlike FTQ-entry boundaries, which depend on which of the
			// preceding branches happened to be taken.
			u.TriggerBlock = in.PC.Line()
		}
		co.decodeQ = append(co.decodeQ, u)
	}
}

// genDataLine draws from the workload's synthetic data-address stream.
func (co *Core) genDataLine() isa.Addr {
	hot := co.cfg.DataHotLines
	cold := co.cfg.DataColdLines
	if hot <= 0 {
		hot = 1
	}
	if cold <= 0 {
		cold = 1
	}
	var idx int
	if co.dataRng.Bool(co.cfg.DataHotFrac) {
		idx = co.dataRng.Intn(hot)
	} else {
		idx = hot + co.dataRng.Intn(cold)
	}
	return dataBase + isa.Addr(idx*isa.LineSize)
}

// --------------------------------------------------------------- predict

// predict runs the IAG for one cycle: assemble the next predicted basic
// block, enqueue it in the FTQ, issue the FDIP prefetch for its lines, and
// consult the prefetcher (PDIP table lookup happens once per new FTQ
// entry, §4.2).
func (co *Core) predict() {
	if co.ftq.Full() || co.now < co.iagResumeAt {
		return
	}
	e := co.iag.NextEntry()

	if !e.WrongPath && co.shadowLeft > 0 {
		e.ShadowTrigger = co.shadowTrigger
		e.ShadowWasReturn = co.shadowWasReturn
		co.shadowLeft--
	}

	co.ftq.Push(e)

	// FDIP prefetch: FTQ entries directly prime the L1I (§2.1). One MSHR
	// is reserved so demand fetches are never fully locked out.
	if !co.cfg.DisableFDIPPrefetch {
		for _, line := range e.Lines {
			co.hier.PrimeInst(line, co.now, 1, co.isPromoted(line))
		}
	}

	// Prefetcher consultation, one probe per distinct line of the entry
	// (the entry's block address, plus spill lines for spanning blocks).
	co.reqBuf = co.reqBuf[:0]
	for _, line := range e.Lines {
		co.reqBuf = co.pf.OnFTQInsert(line, co.reqBuf)
	}
	for _, r := range co.reqBuf {
		// Duplicate suppression against the FTQ (§6.2).
		if co.ftq.Contains(r.Line) {
			co.ct.pfDroppedFTQ.Inc()
			continue
		}
		if co.pfSet != nil {
			co.pfSet[r.Line] = co.now
		}
		co.pq.Enqueue(r)
	}
}

// isFECEver reports whether line ever met the FEC conditions (FEC-Ideal).
func (co *Core) isFECEver(line isa.Addr) bool {
	_, ok := co.fecEver[line]
	return ok
}

// FECInstance is a sampled FEC episode for diagnostics.
type FECInstance struct {
	Line, Trigger isa.Addr
	Starve        int
	Served        mem.Level
}

// FECTrace returns sampled FEC instances (CollectSets only).
func (co *Core) FECTrace() []FECInstance { return co.fecTrace }
