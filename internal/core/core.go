package core

import (
	"fmt"

	"pdip/internal/backend"
	"pdip/internal/bpu"
	"pdip/internal/cache"
	"pdip/internal/cfg"
	"pdip/internal/frontend"
	"pdip/internal/invariant"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/metrics"
	"pdip/internal/pipeline"
	"pdip/internal/prefetch"
	"pdip/internal/rng"
	"pdip/internal/trace"
)

// resteerEvent is the single pending front-end redirect.
type resteerEvent struct {
	at      int64
	target  isa.Addr
	trigger isa.Addr
	cause   frontend.ResteerCause
}

// Core is one simulated core bound to a program. The per-cycle work is
// decomposed into pipeline stages (stage_*.go) ticked in order by pipe;
// Core itself holds the architectural and microarchitectural state the
// stages share, plus the latches between them.
type Core struct {
	cfg  Config
	prog *cfg.Program

	hier *mem.Hierarchy
	// iport and dport are the hierarchy's front ports; every stage access
	// to the memory system is a message through one of them.
	iport mem.Port
	dport mem.Port

	bp  *bpu.BPU
	iag *frontend.IAG
	ftq *frontend.FTQ
	pq  *prefetch.Queue
	rob *backend.ROB
	pf  prefetch.Prefetcher

	// pipe is the ordered stage list ticked once per cycle.
	pipe *pipeline.Pipeline

	// decodeQ is the fetch→decode latch between IFU and allocation.
	decodeQ pipeline.Latch[*frontend.Uop]

	ifuEntry *frontend.FTQEntry

	now int64
	seq uint64
	// retired counts retired instructions since construction (Run loop
	// control; stats.Instructions resets with ResetStats).
	retired uint64

	// pendingResteer is the single in-flight redirect, stored inline
	// (hasResteer gates validity) so scheduling one allocates nothing.
	pendingResteer resteerEvent
	hasResteer     bool
	iagResumeAt    int64

	// Resteer shadow state (§4.2 trigger association).
	shadowTrigger   isa.Addr
	shadowWasReturn bool
	shadowLeft      int

	lastTakenBlock isa.Addr

	// promoted holds EMISSARY-marked FEC lines; future fills of these
	// lines carry the P-bit.
	promoted map[isa.Addr]struct{}
	// fecEver holds every line that ever met the FEC conditions;
	// FEC-Ideal serves these at L1I latency (the §3 ceiling).
	fecEver map[isa.Addr]struct{}

	// Coverage sets (CollectSets only). pfSet records the cycle of the
	// most recent PQ request per line.
	fecSet map[isa.Addr]struct{}
	pfSet  map[isa.Addr]int64
	// fecReqAge histograms FEC instances by age of the last prefetch
	// request for their line: [never, >10K cycles, 100..10K, <=100].
	fecReqAge [4]uint64
	// fecHolds classifies FEC instances (CollectSets + PDIP only):
	// [no-trigger, table-holds-pair, table-missing-pair].
	fecHolds [3]uint64
	// fecTrace samples FEC instances for diagnostics (CollectSets only).
	fecTrace []FECInstance

	dataRng  *rng.RNG
	promoRng *rng.RNG

	// reg is the unified metrics registry every component publishes into;
	// ct holds the core's own counters grouped by owning stage, resolved
	// once at construction.
	reg *metrics.Registry
	ct  counters

	// sampleEvery > 0 records a registry snapshot every that many retired
	// instructions; samples accumulate until ResetStats. sampleHook,
	// when set, additionally observes each sample as it is recorded
	// (streaming observers — the fabric worker — sit above the simulated
	// clock and never influence it).
	sampleEvery uint64
	samples     []metrics.Sample
	sampleHook  func(metrics.Sample)

	reqBuf    []prefetch.Request
	retireBuf []*frontend.Uop

	// uopFree and epFree recycle uop and line-episode storage (pool.go):
	// the steady-state cycle loop allocates nothing once the pools warm.
	uopFree []*frontend.Uop
	epFree  []*frontend.LineEpisode

	// Optional prefetcher extensions, resolved once at construction.
	pfEmitter  prefetch.RetireEmitter
	pfCallsRet interface {
		OnCallReturn(isCall bool, pc, returnAddr isa.Addr)
	}
}

// New builds a core over prog with the given configuration, walking the
// synthetic CFG directly.
func New(prog *cfg.Program, c Config) (*Core, error) {
	return NewWithSource(prog, nil, c)
}

// NewWithSource builds a core whose instruction stream comes from src (a
// ChampSim trace replay, say) instead of a fresh CFG walker. A nil src
// falls back to walking prog with the config seed; prog may be nil only
// when src is non-nil (pure trace replay needs no program, but memop
// generation and wrong-path derivation then live entirely in src).
func NewWithSource(prog *cfg.Program, src trace.OracleSource, c Config) (*Core, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.New(c.Mem)
	if err != nil {
		return nil, err
	}
	return newCore(prog, src, c, hier)
}

// newCore assembles a core over an already-built hierarchy. NewWithSource
// owns the exclusive (single-core) wiring; NewSocket builds core-private
// hierarchies over a shared uncore and hands them here.
func newCore(prog *cfg.Program, src trace.OracleSource, c Config, hier *mem.Hierarchy) (*Core, error) {
	if src == nil && prog == nil {
		return nil, fmt.Errorf("core: need a program or an instruction source")
	}
	bp := bpu.New(c.BPU)
	oracle := src
	if oracle == nil {
		oracle = trace.New(prog, c.Seed)
	}
	pf := c.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	pq := prefetch.NewQueue(c.PQDepth)
	pq.ZeroCost = c.ZeroCostPrefetch
	if c.PQReserveMSHRs != 0 {
		pq.ReserveMSHRs = c.PQReserveMSHRs
	}
	if c.PQReserveMSHRs < 0 {
		pq.ReserveMSHRs = 0
	}
	reg := metrics.NewRegistry()
	co := &Core{
		cfg:      c,
		prog:     prog,
		hier:     hier,
		iport:    hier.InstPort(),
		dport:    hier.DataPort(),
		bp:       bp,
		iag:      frontend.NewIAG(bp, oracle, c.MaxEntryInsts),
		ftq:      frontend.NewFTQ(c.FTQDepth),
		pq:       pq,
		rob:      backend.NewROB(c.ROBSize),
		pf:       pf,
		promoted: make(map[isa.Addr]struct{}),
		fecEver:  make(map[isa.Addr]struct{}),
		dataRng:  rng.New(c.Seed ^ 0xda7a),
		promoRng: rng.New(c.Seed ^ 0xe351),
		reg:      reg,
		ct:       newCounters(reg),
	}
	co.pipe = pipeline.New(
		&retireStage{co: co},
		&resteerStage{co: co},
		&decodeStage{co: co},
		&fetchStage{co: co},
		&predictStage{co: co},
		&prefetchDrainStage{co: co},
	)
	if c.DecodeQDepth > 0 {
		// Occupancy is bounded by the decode-depth check in fetchOne, so
		// pre-sizing the latch once removes growth from the hot path.
		co.decodeQ.Grow(c.DecodeQDepth)
	}
	co.registerMetrics()
	if c.CollectSets {
		co.fecSet = make(map[isa.Addr]struct{})
		co.pfSet = make(map[isa.Addr]int64)
	}
	if e, ok := pf.(prefetch.RetireEmitter); ok {
		co.pfEmitter = e
	}
	if o, ok := pf.(interface {
		OnCallReturn(isCall bool, pc, returnAddr isa.Addr)
	}); ok {
		co.pfCallsRet = o
	}
	return co, nil
}

// MustNew is New for known-good configurations.
func MustNew(prog *cfg.Program, c Config) *Core {
	co, err := New(prog, c)
	if err != nil {
		panic(err)
	}
	return co
}

// Cycles returns the current cycle.
func (co *Core) Cycles() int64 { return co.now }

// Retired returns total retired instructions since construction.
func (co *Core) Retired() uint64 { return co.retired }

// Pipeline returns the ordered stage list (diagnostics and tests).
func (co *Core) Pipeline() *pipeline.Pipeline { return co.pipe }

// Run advances the simulation until n more instructions retire. It returns
// an error if the cycle budget explodes (misconfiguration guard).
func (co *Core) Run(n uint64) error {
	target := co.retired + n
	maxPer := co.cfg.MaxCyclesPerInst
	if maxPer <= 0 {
		maxPer = 400
	}
	budget := co.now + int64(n)*int64(maxPer) + 100_000
	for co.retired < target {
		co.step()
		if co.now > budget {
			return fmt.Errorf("core: cycle budget exceeded (%d cycles, %d/%d instructions) — likely a deadlock or pathological configuration",
				co.now, co.retired, target)
		}
	}
	return nil
}

// step advances one cycle: per-cycle bookkeeping, then every pipeline
// stage in order (oldest work first — see New for the stage sequence).
// After the tick it fast-forwards over provably idle cycles (see
// fastForward), unless the configuration disables it.
func (co *Core) step() {
	co.TickCycle()
	if !co.cfg.NoFastForward {
		co.fastForward()
	}
}

// TickCycle advances the core exactly one cycle: the per-cycle
// bookkeeping plus one tick of every pipeline stage. It is step() minus
// the fast-forward decision, split out so a Socket can interleave N cores
// cycle by cycle and make the idle-skip decision globally (the skip is
// only sound when every core in the socket is idle).
//
//lint:hotpath
func (co *Core) TickCycle() {
	co.now++
	co.ct.pipe.cycles.Inc()
	if invariant.Enabled && (co.ftq.Len() < 0 || co.ftq.Len() > co.ftq.Depth()) {
		invariant.Failf("FTQ occupancy %d outside [0, %d] at cycle %d", co.ftq.Len(), co.ftq.Depth(), co.now)
	}
	co.ct.pipe.ftqOcc.Observe(float64(co.ftq.Len()))
	co.pipe.Tick(co.now)
}

// NextEventAt lower-bounds the next cycle at which any of the core's
// stages can act (pipeline.Never when none can). Socket fast-forward takes
// the minimum across cores.
func (co *Core) NextEventAt() int64 { return co.pipe.NextEventAt(co.now) }

// SkipIdle applies the bulk bookkeeping for n provably idle cycles — the
// cycle counter, the constant FTQ-occupancy sample, and per-stage stall
// attribution — and jumps the clock, exactly as fastForward does for a
// lone core. The caller guarantees no stage can act in the window.
func (co *Core) SkipIdle(n int64) {
	co.ct.pipe.cycles.Add(uint64(n))
	co.ct.pipe.ftqOcc.ObserveN(float64(co.ftq.Len()), uint64(n))
	co.pipe.AccountStall(co.now, n)
	co.now += n
}

// fastForward skips cycles that cannot change architectural state: every
// stage lower-bounds its next event (pipeline.Sleeper) and when the
// earliest bound is T > now+1, the clock jumps directly to T-1 with the
// per-cycle bookkeeping of the skipped window applied in bulk — the cycle
// counter, the FTQ-occupancy sample (constant across the window, since no
// stage acts), and each stage's stalled-cycle accounting
// (pipeline.StallAccounter). The next step() then ticks cycle T normally.
// Metrics are bit-identical to stepping every cycle; TestFastForwardBitIdentical
// and the golden-grid replay pin that equivalence. When every stage reports
// Never (a true deadlock) nothing is skipped, so Run's cycle-budget guard
// still fires.
func (co *Core) fastForward() {
	next := co.pipe.NextEventAt(co.now)
	if next <= co.now+1 || next == pipeline.Never {
		return
	}
	co.SkipIdle(next - co.now - 1)
}

// ResetStats zeroes all measurement counters while keeping architectural
// and microarchitectural state (caches, predictors, tables) warm. Call
// after the warmup window, mirroring the paper's methodology (§6.1).
func (co *Core) ResetStats() {
	co.reg.Reset()
	co.samples = co.samples[:0]
	co.hier.L1I.Stats = cache.Stats{}
	co.hier.L1D.Stats = cache.Stats{}
	co.hier.L2.Stats = cache.Stats{}
	co.hier.L3.Stats = cache.Stats{}
	co.pq.Stats = prefetch.Stats{}
	co.bp.Stats = bpu.Stats{}
	co.rob.Stats = backend.Stats{}
	// Clear the CollectSets diagnostics too, so the coverage sets describe
	// the measured window only. This makes CollectSets a pure measure-phase
	// knob: a core forked from a warm snapshot (whose warmup ran without
	// CollectSets) starts the measured window with exactly the same empty
	// sets as a from-scratch run reset here.
	if co.fecSet != nil {
		clear(co.fecSet)
	}
	if co.pfSet != nil {
		clear(co.pfSet)
	}
	co.fecReqAge = [4]uint64{}
	co.fecHolds = [3]uint64{}
	co.fecTrace = co.fecTrace[:0]
	if r, ok := co.pf.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
}
