package core

import (
	"testing"

	"pdip/internal/cfg"
	"pdip/internal/eip"
	"pdip/internal/pdip"
	"pdip/internal/prefetch"
	"pdip/internal/rdip"
)

func testProgram(seed uint64) *cfg.Program {
	p := cfg.DefaultParams()
	p.Seed = seed
	p.NumFuncs = 256
	return cfg.MustGenerate(p)
}

func testConfig(seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	return c
}

func TestDeterminism(t *testing.T) {
	prog := testProgram(1)
	run := func() Result {
		co := MustNew(prog, testConfig(7))
		if err := co.Run(60000); err != nil {
			t.Fatal(err)
		}
		return co.Result()
	}
	a, b := run(), run()
	if a.Core.Cycles != b.Core.Cycles || a.Core.Instructions != b.Core.Instructions ||
		a.L1I.Fills != b.L1I.Fills || a.Core.FECLines != b.Core.FECLines {
		t.Fatalf("identical runs diverged: %+v vs %+v", a.Core, b.Core)
	}
}

func TestSeedsChangeOutcome(t *testing.T) {
	prog := testProgram(2)
	r1 := MustNew(prog, testConfig(1))
	r2 := MustNew(prog, testConfig(2))
	if err := r1.Run(40000); err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(40000); err != nil {
		t.Fatal(err)
	}
	if r1.Cycles() == r2.Cycles() {
		t.Fatal("different seeds produced identical cycle counts (suspicious)")
	}
}

func TestRunRetiresExactly(t *testing.T) {
	co := MustNew(testProgram(3), testConfig(3))
	if err := co.Run(12345); err != nil {
		t.Fatal(err)
	}
	got := co.Retired()
	// The retire loop stops at cycle granularity: within one retire width.
	if got < 12345 || got > 12345+12 {
		t.Fatalf("retired %d, want ≈12345", got)
	}
}

func TestResetStatsKeepsArchState(t *testing.T) {
	co := MustNew(testProgram(4), testConfig(4))
	if err := co.Run(50000); err != nil {
		t.Fatal(err)
	}
	wr := co.Result()
	warmIPC := wr.IPC()
	co.ResetStats()
	if co.Result().Core.Cycles != 0 {
		t.Fatal("stats survived reset")
	}
	if err := co.Run(50000); err != nil {
		t.Fatal(err)
	}
	mr := co.Result()
	measIPC := mr.IPC()
	// Warm structures should not be slower than the cold phase.
	if measIPC < warmIPC*0.8 {
		t.Fatalf("post-warmup IPC %.3f much worse than cold %.3f", measIPC, warmIPC)
	}
}

func TestTopDownSlotsConserved(t *testing.T) {
	co := MustNew(testProgram(5), testConfig(5))
	if err := co.Run(50000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	slots := r.Core.TopDown.Total()
	want := r.Core.Cycles * uint64(co.cfg.DecodeWidth)
	if slots != want {
		t.Fatalf("top-down slots %d, want cycles×width %d", slots, want)
	}
	ret, fe, bs, be := r.Core.TopDown.Shares()
	sum := ret + fe + bs + be
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestConfigValidation(t *testing.T) {
	prog := testProgram(6)
	bad := testConfig(1)
	bad.FTQDepth = 0
	if _, err := New(prog, bad); err == nil {
		t.Fatal("FTQDepth=0 accepted")
	}
	bad = testConfig(1)
	bad.Emissary = true // without protected ways
	if _, err := New(prog, bad); err == nil {
		t.Fatal("Emissary without protected ways accepted")
	}
	bad = testConfig(1)
	bad.Mem.L2.ProtectedWays = 4 // without Emissary
	if _, err := New(prog, bad); err == nil {
		t.Fatal("protected ways without Emissary accepted")
	}
	bad = testConfig(1)
	bad.MemOpFrac = 1.5
	if _, err := New(prog, bad); err == nil {
		t.Fatal("MemOpFrac=1.5 accepted")
	}
}

func TestFECConditionsRequireRetirement(t *testing.T) {
	// FEC lines must be a subset of retired line episodes, and FEC stall
	// cycles must not exceed attributed starvation.
	co := MustNew(testProgram(7), testConfig(8))
	if err := co.Run(80000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	c := &r.Core
	if c.FECLines > c.LinesRetired {
		t.Fatalf("FEC lines %d exceed retired episodes %d", c.FECLines, c.LinesRetired)
	}
	if c.HighCostFECLines > c.FECLines || c.HighCostBackend > c.HighCostFECLines {
		t.Fatalf("FEC hierarchy violated: %d ≥ %d ≥ %d", c.FECLines, c.HighCostFECLines, c.HighCostBackend)
	}
	if c.FECStallCycles+c.NonFECStall > c.StarvedOnMiss {
		t.Fatalf("attributed stalls (%d+%d) exceed starved-on-miss %d",
			c.FECStallCycles, c.NonFECStall, c.StarvedOnMiss)
	}
	if c.StarvedOnMiss+c.StarveNoEntry+c.StarvePipe+c.StarveOther != c.DecodeStarvedCycles {
		t.Fatal("starvation categories do not sum to the total")
	}
}

func TestWrongPathNeverRetires(t *testing.T) {
	// Instructions counts correct-path only; the oracle stream ordering
	// is preserved (checked indirectly: retired == requested budget and
	// resteer machinery fired).
	co := MustNew(testProgram(8), testConfig(9))
	if err := co.Run(60000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if r.Core.WrongPathInstructions == 0 {
		t.Fatal("no wrong-path instructions modelled")
	}
	total := r.Core.ResteerMispredict + r.Core.ResteerBTBMiss + r.Core.ResteerReturn
	if total == 0 {
		t.Fatal("no resteers fired")
	}
}

func TestEmissaryPromotes(t *testing.T) {
	c := testConfig(10)
	c.Emissary = true
	c.Mem.L2.ProtectedWays = 8
	c.EmissaryPromoteProb = 1.0 // promote every FEC line for the test
	co := MustNew(testProgram(9), c)
	if err := co.Run(80000); err != nil {
		t.Fatal(err)
	}
	if co.Result().Core.FECLines > 0 && len(co.promoted) == 0 {
		t.Fatal("FEC lines seen but nothing promoted at probability 1")
	}
}

func TestFECIdealNotSlower(t *testing.T) {
	prog := testProgram(11)
	baseCfg := testConfig(12)
	base := MustNew(prog, baseCfg)
	if err := base.Run(150000); err != nil {
		t.Fatal(err)
	}
	idealCfg := testConfig(12)
	idealCfg.FECIdeal = true
	idealCfg.Emissary = true
	idealCfg.Mem.L2.ProtectedWays = 8
	ideal := MustNew(prog, idealCfg)
	if err := ideal.Run(150000); err != nil {
		t.Fatal(err)
	}
	ir, br := ideal.Result(), base.Result()
	if ir.IPC() < br.IPC()*0.99 {
		t.Fatalf("FEC-Ideal IPC %.3f below baseline %.3f", ir.IPC(), br.IPC())
	}
}

func TestPDIPIntegration(t *testing.T) {
	c := testConfig(13)
	pc := pdip.DefaultConfig()
	pc.Seed = c.Seed
	pc.InsertProb = 1.0
	pc.RequireHighCost = false
	p := pdip.New(pc)
	c.Prefetcher = p
	co := MustNew(testProgram(12), c)
	if err := co.Run(150000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if r.PrefetcherName != "pdip" || r.PrefetcherKB != 43.5 {
		t.Fatalf("prefetcher identity: %s %.1fKB", r.PrefetcherName, r.PrefetcherKB)
	}
	if p.Stats.Lookups == 0 {
		t.Fatal("PDIP never consulted")
	}
	if r.Core.FECLines > 100 && r.PQ.Enqueued == 0 {
		t.Fatal("FEC lines observed but no prefetch requests generated")
	}
}

func TestEIPIntegration(t *testing.T) {
	c := testConfig(14)
	c.Prefetcher = eip.New(eip.DefaultConfig())
	co := MustNew(testProgram(13), c)
	if err := co.Run(150000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if r.PrefetcherName != "eip" {
		t.Fatalf("prefetcher name %q", r.PrefetcherName)
	}
	if r.PQ.Issued == 0 {
		t.Fatal("EIP issued nothing on an I-pressured program")
	}
}

func TestNoFDIPIsSlower(t *testing.T) {
	prog := testProgram(15)
	fdip := MustNew(prog, testConfig(16))
	if err := fdip.Run(150000); err != nil {
		t.Fatal(err)
	}
	cfgNo := testConfig(16)
	cfgNo.FTQDepth = 1
	cfgNo.DisableFDIPPrefetch = true
	noFdip := MustNew(prog, cfgNo)
	if err := noFdip.Run(150000); err != nil {
		t.Fatal(err)
	}
	nr, fr := noFdip.Result(), fdip.Result()
	if nr.IPC() >= fr.IPC() {
		t.Fatalf("coupled front-end IPC %.3f not below FDIP %.3f (the paper reports FDIP +27.1%%)",
			nr.IPC(), fr.IPC())
	}
}

func TestCollectSets(t *testing.T) {
	c := testConfig(17)
	c.CollectSets = true
	pc := pdip.DefaultConfig()
	pc.InsertProb = 1.0
	pc.RequireHighCost = false
	c.Prefetcher = pdip.New(pc)
	co := MustNew(prog17, c)
	if err := co.Run(120000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if uint64(len(r.FECLineSet)) > r.Core.FECLines {
		t.Fatal("FEC line set larger than FEC episode count")
	}
}

var prog17 = testProgram(17)

func TestCycleBudgetGuard(t *testing.T) {
	c := testConfig(18)
	c.MaxCyclesPerInst = 1 // impossible for a crippled 1-wide machine
	c.DecodeWidth = 1
	c.RetireWidth = 1
	c.FTQDepth = 1
	c.DisableFDIPPrefetch = true
	co := MustNew(testProgram(18), c)
	if err := co.Run(1_000_000); err == nil {
		t.Fatal("cycle budget guard did not trip")
	}
}

func TestRetireEmitterIntegration(t *testing.T) {
	// A retire-time prefetcher (next-line) must get its pending requests
	// drained into the PQ and issued.
	c := testConfig(20)
	nl := prefetch.NewNextLine(2)
	c.Prefetcher = nl
	co := MustNew(testProgram(20), c)
	if err := co.Run(120000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if nl.Emitted == 0 {
		t.Fatal("next-line emitted nothing on an I-pressured program")
	}
	if r.PQ.Enqueued == 0 {
		t.Fatal("retire-emitter requests never reached the PQ")
	}
}

func TestCallReturnObserverIntegration(t *testing.T) {
	c := testConfig(21)
	rd := rdip.New(rdip.DefaultConfig())
	c.Prefetcher = rd
	co := MustNew(testProgram(21), c)
	if err := co.Run(120000); err != nil {
		t.Fatal(err)
	}
	if rd.Stats.ContextSwitches == 0 {
		t.Fatal("RDIP never notified of calls/returns")
	}
}
