// Package core assembles the whole simulated core: the synthetic program
// and its oracle walker, the BPU-driven decoupled front-end (IAG, FTQ,
// IFU), the cache hierarchy, the simple out-of-order back-end, and the
// pluggable prefetcher with its prefetch queue. The per-cycle loop in
// core.go implements the FEC (front-end criticality) machinery the paper
// builds PDIP and EMISSARY on.
package core

import (
	"fmt"

	"pdip/internal/bpu"
	"pdip/internal/mem"
	"pdip/internal/prefetch"
)

// Config parameterises one simulation.
type Config struct {
	// Seed drives every stochastic decision not already owned by a
	// subsystem (data-address stream, EMISSARY promotion coin).
	Seed uint64

	// Mem configures the cache hierarchy (Table 1 defaults).
	Mem mem.Config
	// BPU configures the branch prediction unit.
	BPU bpu.Config

	// FTQDepth is the fetch target queue depth (Table 1: 24 entries).
	FTQDepth int
	// PQDepth is the prefetch queue depth (Table 1: 40 cache lines).
	PQDepth int
	// MaxEntryInsts caps instructions per FTQ entry (basic-block cap).
	MaxEntryInsts int
	// IAGWidth is the number of basic blocks the BPU predicts per cycle
	// (Golden Cove-class front-ends predict two). Without prediction
	// bandwidth above the fetch drain rate the FTQ could never refill
	// after a flush, and FDIP would hide nothing.
	IAGWidth int
	// FetchWidth is the number of ready FTQ entries the IFU can deliver
	// to decode per cycle.
	FetchWidth int
	// DecodeWidth and RetireWidth are the pipeline widths (Table 1: 12).
	DecodeWidth, RetireWidth int
	// ROBSize is the reorder buffer capacity (Table 1: 512).
	ROBSize int
	// DecodeQDepth bounds the fetch/decode buffer between IFU and ROB.
	DecodeQDepth int

	// DecodePipeLat is the fetch-to-allocate pipeline depth in cycles.
	DecodePipeLat int
	// ExecLat is the generic execution latency.
	ExecLat int
	// BranchResolveLat is allocate-to-execute latency for branches; a
	// mispredict resteers the front-end this many cycles after decode.
	BranchResolveLat int
	// ResteerPenalty is the flush/redirect bubble before the IAG resumes.
	ResteerPenalty int
	// ResteerShadowBlocks is how many correct-path FTQ entries after a
	// resteer are considered fetched "in the wake of" the resteer and
	// carry its trigger for FEC association (§4.2).
	ResteerShadowBlocks int
	// HighCostThreshold is the starvation-cycle bound above which an FEC
	// line is high cost (§3: >10 cycles).
	HighCostThreshold int

	// MemOpFrac is the fraction of instructions that access data memory.
	MemOpFrac float64
	// DataHotLines/DataColdLines/DataHotFrac shape the synthetic data
	// stream: DataHotFrac of accesses hit a DataHotLines-lines hot set,
	// the rest spread over DataColdLines lines.
	DataHotLines, DataColdLines int
	DataHotFrac                 float64

	// EmissaryPromoteProb promotes FEC-qualified lines with this
	// probability when EMISSARY (or FEC-Ideal) is active (§6.5: 1/32).
	EmissaryPromoteProb float64
	// Emissary enables the EMISSARY L2 replacement policy; the protected
	// way count itself lives in Mem.L2.ProtectedWays.
	Emissary bool

	// Prefetcher is the pluggable instruction prefetcher; nil runs the
	// FDIP-only baseline.
	Prefetcher prefetch.Prefetcher
	// ZeroCostPrefetch makes PQ prefetches install instantly (§7.2).
	ZeroCostPrefetch bool
	// PQReserveMSHRs is the MSHR headroom the PQ leaves for demand
	// fetches (§5: a threshold of 2 works best). Negative disables the
	// reserve entirely (ablation).
	PQReserveMSHRs int
	// DisableFDIPPrefetch turns off FTQ-driven L1I priming, degrading the
	// front-end to a coupled fetch engine (the paper's no-FDIP ablation:
	// FDIP is worth 27.1% over a non-FDIP O3 core, §6.2).
	DisableFDIPPrefetch bool
	// FECIdeal makes every EMISSARY-marked FEC line hit with L1I latency
	// (the FEC-Ideal ceiling of §3).
	FECIdeal bool

	// CollectSets gathers the FEC-line and prefetch-target sets needed
	// for coverage analysis (§7.3); costs memory, off by default.
	CollectSets bool

	// MaxCyclesPerInst aborts a run whose cycle count explodes (guards
	// against configuration errors); 0 uses a generous default.
	MaxCyclesPerInst int

	// NoFastForward disables idle-cycle fast-forward (see Core.step): the
	// clock then ticks every cycle individually. Metrics are bit-identical
	// either way — the flag exists to verify exactly that, and as an
	// escape hatch when debugging the stage event bounds themselves.
	NoFastForward bool
}

// DefaultConfig returns the paper's Golden Cove-like baseline (Table 1)
// with a neutral synthetic data stream.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Mem:                 mem.DefaultConfig(),
		BPU:                 bpu.DefaultConfig(),
		FTQDepth:            24,
		PQDepth:             40,
		MaxEntryInsts:       16,
		IAGWidth:            2,
		FetchWidth:          2,
		DecodeWidth:         12,
		RetireWidth:         12,
		ROBSize:             512,
		DecodeQDepth:        64,
		DecodePipeLat:       4,
		ExecLat:             3,
		BranchResolveLat:    8,
		ResteerPenalty:      4,
		ResteerShadowBlocks: 3,
		HighCostThreshold:   10,
		PQReserveMSHRs:      2,
		MemOpFrac:           0.30,
		DataHotLines:        512,
		DataColdLines:       1 << 16,
		DataHotFrac:         0.90,
		EmissaryPromoteProb: 1.0 / 32.0,
		MaxCyclesPerInst:    0,
	}
}

// Validate reports configuration errors before they become simulator bugs.
func (c *Config) Validate() error {
	switch {
	case c.FTQDepth <= 0:
		return fmt.Errorf("core: FTQDepth must be positive")
	case c.DecodeWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("core: pipeline widths must be positive")
	case c.ROBSize <= 0:
		return fmt.Errorf("core: ROBSize must be positive")
	case c.MemOpFrac < 0 || c.MemOpFrac > 1:
		return fmt.Errorf("core: MemOpFrac must be in [0,1]")
	case c.EmissaryPromoteProb < 0 || c.EmissaryPromoteProb > 1:
		return fmt.Errorf("core: EmissaryPromoteProb must be in [0,1]")
	case c.Emissary && c.Mem.L2.ProtectedWays <= 0:
		return fmt.Errorf("core: Emissary enabled but Mem.L2.ProtectedWays is 0")
	case !c.Emissary && !c.FECIdeal && c.Mem.L2.ProtectedWays > 0:
		return fmt.Errorf("core: Mem.L2.ProtectedWays set without Emissary")
	}
	return nil
}
