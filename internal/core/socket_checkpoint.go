package core

import (
	"fmt"

	"pdip/internal/checkpoint"
)

// Snapshot captures the complete socket at a cycle boundary: the shared
// uncore exactly once, then every core as a child state (whose hierarchy
// section is marked Shared, so the L2/L3 columns are not duplicated per
// core). With SharedPrefetcher the one table is captured inside each
// core's Prefetcher section; the copies are identical (same instance,
// same instant) and the last restore wins harmlessly.
func (s *Socket) Snapshot() (*checkpoint.SocketState, error) {
	st := &checkpoint.SocketState{
		Version:          checkpoint.FormatVersion,
		Now:              s.now,
		SharedPrefetcher: s.cfg.SharedPrefetcher,
		Uncore:           s.unc.CaptureCheckpoint(),
		Cores:            make([]checkpoint.State, len(s.cores)),
	}
	for i, co := range s.cores {
		cs, err := co.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("socket: tenant %d: %w", i, err)
		}
		st.Cores[i] = *cs
	}
	return st, nil
}

// NewSocketFromSnapshot rebuilds a socket from tenants and sc — which must
// match the snapshotted socket's shape — then overwrites all state from
// st. The restored socket replays bit-identically to the original.
func NewSocketFromSnapshot(tenants []SocketTenant, sc SocketConfig, st *checkpoint.SocketState) (*Socket, error) {
	if st.Version != checkpoint.FormatVersion {
		return nil, fmt.Errorf("socket: snapshot format version %d, want %d", st.Version, checkpoint.FormatVersion)
	}
	if len(st.Cores) != len(tenants) {
		return nil, fmt.Errorf("socket: snapshot has %d cores, got %d tenants", len(st.Cores), len(tenants))
	}
	if st.SharedPrefetcher != sc.SharedPrefetcher {
		return nil, fmt.Errorf("socket: snapshot shared-prefetcher=%v, config says %v", st.SharedPrefetcher, sc.SharedPrefetcher)
	}
	s, err := NewSocket(tenants, sc)
	if err != nil {
		return nil, err
	}
	if err := s.unc.RestoreCheckpoint(st.Uncore); err != nil {
		return nil, err
	}
	for i, co := range s.cores {
		if err := co.restore(&st.Cores[i]); err != nil {
			return nil, fmt.Errorf("socket: tenant %d: %w", i, err)
		}
	}
	s.now = st.Now
	return s, nil
}
