package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
	"pdip/internal/isa"
	"pdip/internal/metrics"
	"pdip/internal/pipeline"
	"pdip/internal/prefetch"
)

// retireStage drains completed uops from the ROB in order, up to the
// retire width, and runs the retire-time machinery: FEC evaluation of
// line episodes (fec.go), EMISSARY promotion, prefetcher notification,
// and call/return tracking. It owns the core.* retire counters.
type retireStage struct {
	co *Core
}

// Name implements pipeline.Stage.
func (s *retireStage) Name() string { return "retire" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *retireStage) Tick(now int64) {
	co := s.co
	co.retireBuf = co.rob.Retire(now, co.cfg.RetireWidth, co.retireBuf[:0])
	for _, u := range co.retireBuf {
		s.retireUop(u)
		co.releaseUop(u)
	}
}

// NextEventAt implements pipeline.Sleeper: retirement next acts when the
// ROB head's execution completes (or immediately, when this cycle's
// retire was width-capped with the head already done). An empty ROB
// sleeps until decode pushes — decode's own bound covers that.
func (s *retireStage) NextEventAt(now int64) int64 {
	u := s.co.rob.Head()
	if u == nil {
		return pipeline.Never
	}
	if u.DoneAt <= now {
		return now + 1
	}
	return u.DoneAt
}

func (s *retireStage) retireUop(u *frontend.Uop) {
	co := s.co
	ct := &co.ct.retire
	co.retired++
	ct.instructions.Inc()
	if co.sampleEvery > 0 {
		if n := ct.instructions.Load(); n%co.sampleEvery == 0 {
			s := metrics.Sample{Instructions: n, Metrics: co.reg.Snapshot()}
			co.samples = append(co.samples, s)
			if co.sampleHook != nil {
				co.sampleHook(s)
			}
		}
	}

	if ep := u.Ep; ep != nil && !ep.Processed {
		ep.Processed = true
		s.processEpisode(ep)
	}
	if u.Inst.Kind.IsBranch() && u.Inst.Taken {
		co.lastTakenBlock = u.Inst.PC.Line()
	}
	if co.pfCallsRet != nil {
		if u.Inst.Kind.IsCall() {
			co.pfCallsRet.OnCallReturn(true, u.Inst.PC, u.Inst.FallThrough())
		} else if u.Inst.Kind == isa.Return {
			co.pfCallsRet.OnCallReturn(false, u.Inst.PC, 0)
		}
	}
}

// processEpisode evaluates the FEC conditions for a retired line episode
// and feeds EMISSARY promotion and the prefetcher (§2.1, §4.1, §4.2).
func (s *retireStage) processEpisode(ep *frontend.LineEpisode) {
	co := s.co
	ct := &co.ct.retire
	if invariant.Enabled && ep.DoneCycle < ep.FetchCycle {
		invariant.Failf("retire: episode for line %#x completes at %d, before its fetch at %d",
			uint64(ep.Line), ep.DoneCycle, ep.FetchCycle)
	}
	ct.linesRetired.Inc()
	fec := ep.Missed && ep.Starve > 0
	highCost := fec && ep.Starve > co.cfg.HighCostThreshold

	if ep.WasPrefetch && ep.ResteerTrigger != 0 && !fec {
		ct.shadowCovered.Inc()
	}
	if fec {
		co.recordFECDiagnostics(ep)
		ct.fecLines.Inc()
		if ep.WasPrefetch {
			ct.fecCoveredLate.Inc()
		}
		if _, seen := co.fecEver[ep.Line]; seen {
			ct.fecRepeatLines.Inc()
		}
		ct.fecStallCycles.Add(uint64(ep.Starve))
		if highCost {
			ct.highCostFECLines.Inc()
			if ep.BackendEmpty {
				ct.highCostBackend.Inc()
			}
		}
		co.fecEver[ep.Line] = struct{}{}
		if co.fecSet != nil {
			co.fecSet[ep.Line] = struct{}{}
		}
		if (co.cfg.Emissary || co.cfg.FECIdeal) && co.promoRng.Bool(co.cfg.EmissaryPromoteProb) {
			co.promoted[ep.Line] = struct{}{}
			co.hier.PromoteInstLine(ep.Line)
		}
	} else if ep.Starve > 0 {
		ct.nonFECStall.Add(uint64(ep.Starve))
	}

	co.pf.OnLineRetired(prefetch.RetireEvent{
		Line:             ep.Line,
		Missed:           ep.Missed,
		ServedBy:         ep.ServedBy,
		FetchCycle:       ep.FetchCycle,
		FetchLatency:     ep.DoneCycle - ep.FetchCycle,
		StarveCycles:     ep.Starve,
		BackendEmpty:     ep.BackendEmpty,
		FEC:              fec,
		HighCost:         highCost,
		ResteerTrigger:   ep.ResteerTrigger,
		ResteerWasReturn: ep.ResteerWasReturn,
		LastTakenBlock:   co.lastTakenBlock,
	})
}
