// BTB sweep: a Figure 14-style study on one benchmark — how much of the
// front-end bottleneck is BTB capacity, and what PDIP adds at each size.
package main

import (
	"fmt"
	"log"

	"pdip"
)

func main() {
	const bench = "tpcc"
	o := pdip.QuickOptions()
	fmt.Printf("%-12s %10s %14s %14s\n", "BTB entries", "base IPC", "pdip44 gain", "btb-miss/KI")
	for _, entries := range []int{4096, 8192, 16384, 32768} {
		base, err := pdip.Run(pdip.RunSpec{
			Benchmark: bench, Policy: "baseline",
			Warmup: o.Warmup, Measure: o.Measure, BTBEntries: entries,
		})
		if err != nil {
			log.Fatal(err)
		}
		withPDIP, err := pdip.Run(pdip.RunSpec{
			Benchmark: bench, Policy: "pdip44",
			Warmup: o.Warmup, Measure: o.Measure, BTBEntries: entries,
		})
		if err != nil {
			log.Fatal(err)
		}
		gain := withPDIP.Res.IPC()/base.Res.IPC() - 1
		fmt.Printf("%-12d %10.3f %13.2f%% %14.2f\n",
			entries, base.Res.IPC(), gain*100,
			base.Res.Core.PerKilo(base.Res.Core.ResteerBTBMiss))
	}
}
