// Policy comparison: a Figure 10-style speedup table over a benchmark
// subset, using the memoising runner so the baselines are shared.
package main

import (
	"fmt"
	"log"

	"pdip"
)

func main() {
	benches := []string{"cassandra", "tpcc", "verilator"}
	policies := []string{"2x-il1", "emissary", "eip46", "pdip44", "pdip44+emissary", "fec-ideal"}
	o := pdip.QuickOptions()
	runner := pdip.NewRunner(0)

	fmt.Printf("%-12s", "benchmark")
	for _, p := range policies {
		fmt.Printf("  %16s", p)
	}
	fmt.Println()

	geo := make(map[string][]float64)
	for _, b := range benches {
		base, err := pdip.Run(pdip.RunSpec{Benchmark: b, Policy: "baseline", Warmup: o.Warmup, Measure: o.Measure})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", b)
		for _, p := range policies {
			res, err := runner.Run(pdip.RunSpec{Benchmark: b, Policy: p, Warmup: o.Warmup, Measure: o.Measure})
			if err != nil {
				log.Fatal(err)
			}
			s := res.Res.IPC()/base.Res.IPC() - 1
			geo[p] = append(geo[p], s)
			fmt.Printf("  %15.2f%%", s*100)
		}
		fmt.Println()
	}
}
