// Quickstart: simulate one server benchmark on the FDIP baseline and with
// the PDIP(44) prefetcher, and report the headline metrics the paper uses.
package main

import (
	"fmt"
	"log"

	"pdip"
)

func main() {
	const bench = "cassandra"
	budgets := pdip.QuickOptions()

	base, err := pdip.Run(pdip.RunSpec{
		Benchmark: bench, Policy: "baseline",
		Warmup: budgets.Warmup, Measure: budgets.Measure,
	})
	if err != nil {
		log.Fatal(err)
	}
	withPDIP, err := pdip.Run(pdip.RunSpec{
		Benchmark: bench, Policy: "pdip44",
		Warmup: budgets.Warmup, Measure: budgets.Measure,
	})
	if err != nil {
		log.Fatal(err)
	}

	b, p := &base.Res, &withPDIP.Res
	fmt.Printf("benchmark: %s\n", bench)
	fmt.Printf("baseline:  IPC %.3f, L1I MPKI %.1f, FEC lines %.1f%% of episodes causing %.1f%% of decode starvation\n",
		b.IPC(), b.L1IMPKI(), b.FECLinePct()*100, b.FECStallShare()*100)
	fmt.Printf("pdip44:    IPC %.3f (%+.2f%%), PPKI %.1f, accuracy %.1f%%, late %.1f%%\n",
		p.IPC(), (p.IPC()/b.IPC()-1)*100, p.PPKI(), p.PrefetchAccuracy()*100, p.LatePrefetchRate()*100)
	mp, lt := p.TriggerDistribution()
	fmt.Printf("           trigger mix: %.0f%% mispredict / %.0f%% last-taken\n", mp*100, lt*100)
}
