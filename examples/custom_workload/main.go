// Custom workload: author a synthetic profile from scratch — a small,
// loop-heavy "microservice" — and measure how the FDIP front-end and PDIP
// behave on it. This is the path for studying workloads the paper did not
// include.
package main

import (
	"fmt"
	"log"

	"pdip"
	ipdip "pdip/internal/pdip"
)

func main() {
	// Start from a known profile and reshape it: a smaller footprint,
	// longer basic blocks, and more hard (data-dependent) branches.
	prof, err := pdip.BenchmarkByName("ycsb")
	if err != nil {
		log.Fatal(err)
	}
	prof.Name = "my-microservice"
	prof.Description = "hand-built profile: small hot footprint, branchy parsing"
	prof.CFG.Seed = 424242
	prof.CFG.NumFuncs = 1200
	prof.CFG.BlocksPerFuncMean = 16
	prof.CFG.HardBranchFrac = 0.12
	prof.CFG.HardBias = 0.65
	prof.MemOpFrac = 0.25

	warmup, measure := uint64(100_000), uint64(300_000)

	base := pdip.DefaultCoreConfig()
	base.Seed = prof.CFG.Seed
	rBase, err := pdip.RunProfile(prof, base, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	withPDIP := pdip.DefaultCoreConfig()
	withPDIP.Seed = prof.CFG.Seed
	pc := ipdip.DefaultConfig()
	pc.Seed = prof.CFG.Seed
	withPDIP.Prefetcher = ipdip.New(pc)
	rPDIP, err := pdip.RunProfile(prof, withPDIP, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profile %q: %d funcs, footprint pressure L1I MPKI %.1f\n",
		prof.Name, prof.CFG.NumFuncs, rBase.L1IMPKI())
	fmt.Printf("baseline IPC %.3f; with PDIP(44): IPC %.3f (%+.2f%%), PPKI %.1f, accuracy %.1f%%\n",
		rBase.IPC(), rPDIP.IPC(), (rPDIP.IPC()/rBase.IPC()-1)*100,
		rPDIP.PPKI(), rPDIP.PrefetchAccuracy()*100)
}
